"""Coverage for the results warehouse: durability, querying, aggregation."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    mean_confidence_interval,
    normalized_mlu_statistics,
)
from repro.study import ResultSet, ResultWarehouse, StudyResult, WarehouseError


def _record(
    scenario="geant_small",
    scheme="FIGRET",
    experiment="replay",
    tags=None,
    metrics=None,
    series=(1.0, 1.5, 2.0),
    **spec_extra,
):
    spec = {"scenario": scenario, "max_intervals": 3, **spec_extra}
    if tags is not None:
        spec["tags"] = dict(tags)
    return StudyResult(
        scenario=scenario,
        scheme=scheme,
        experiment=experiment,
        spec=spec,
        metrics=dict(metrics or {"mean": 1.25, "p90": 1.9}),
        series=None if series is None else np.asarray(series, dtype=float),
    )


# --------------------------------------------------------------------------- #
# Append / load round-trip and durability
# --------------------------------------------------------------------------- #
class TestWarehouseStore:
    def test_missing_file_is_an_empty_warehouse(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        assert not store.exists()
        assert len(store.results()) == 0

    def test_append_then_load_round_trips(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        records = [
            _record(scheme="FIGRET", tags={"suite": "s", "repetition": 0}),
            _record(scheme="DOTE", tags={"suite": "s", "repetition": 1}, series=None),
        ]
        store.extend(records)
        loaded = store.results()
        assert len(loaded) == 2
        for before, after in zip(records, loaded):
            assert after.scheme == before.scheme
            assert after.spec == before.spec
            assert after.metrics == before.metrics
            if before.series is None:
                assert after.series is None
            else:
                np.testing.assert_array_equal(after.series, before.series)

    def test_append_creates_parent_directories_and_header(self, tmp_path):
        path = tmp_path / "a" / "b" / "wh.jsonl"
        ResultWarehouse(path).append(_record())
        first = path.read_text().splitlines()[0]
        header = json.loads(first)
        assert header["format"] == "repro-study-warehouse"
        assert header["version"] == 1

    def test_appends_accumulate_across_store_instances(self, tmp_path):
        path = tmp_path / "wh.jsonl"
        ResultWarehouse(path).append(_record(scheme="A"))
        ResultWarehouse(path).append(_record(scheme="B"))
        assert [r.scheme for r in ResultWarehouse(path).results()] == ["A", "B"]

    def test_torn_trailing_record_is_dropped_and_compacted(self, tmp_path):
        path = tmp_path / "wh.jsonl"
        store = ResultWarehouse(path)
        store.append(_record(scheme="KEPT"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"scenario": "half-writ')
        with pytest.warns(RuntimeWarning, match="partially written trailing record"):
            loaded = store.results()
        assert [r.scheme for r in loaded] == ["KEPT"]
        # The torn line is gone from disk, so the next append lands cleanly.
        store.append(_record(scheme="NEXT"))
        assert [r.scheme for r in store.results()] == ["KEPT", "NEXT"]

    def test_foreign_file_raises_warehouse_error(self, tmp_path):
        path = tmp_path / "wh.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(WarehouseError, match="is not a results warehouse"):
            ResultWarehouse(path).results()

    def test_version_mismatch_raises_warehouse_error(self, tmp_path):
        path = tmp_path / "wh.jsonl"
        path.write_text('{"format": "repro-study-warehouse", "version": 99}\n')
        with pytest.raises(WarehouseError, match="unsupported results warehouse version 99"):
            ResultWarehouse(path).results()

    def test_corrupt_mid_file_record_raises_naming_the_line(self, tmp_path):
        path = tmp_path / "wh.jsonl"
        store = ResultWarehouse(path)
        store.append(_record())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        store_text = path.read_text()
        store.path.write_text(store_text + json.dumps(_record().to_dict()) + "\n")
        with pytest.raises(WarehouseError, match="line 3"):
            store.results()

    def test_warehouse_error_is_a_value_error(self):
        assert issubclass(WarehouseError, ValueError)


# --------------------------------------------------------------------------- #
# sync (reconciliation)
# --------------------------------------------------------------------------- #
class TestWarehouseSync:
    def test_sync_appends_only_missing_records(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        first, second = _record(scheme="A"), _record(scheme="B")
        store.append(first)
        added = store.sync(ResultSet([first, second]))
        assert added == 1
        assert [r.scheme for r in store.results()] == ["A", "B"]

    def test_sync_is_idempotent(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        results = ResultSet([_record(scheme="A"), _record(scheme="B")])
        assert store.sync(results) == 2
        assert store.sync(results) == 0
        assert len(store.results()) == 2

    def test_sync_counts_duplicate_provenance(self, tmp_path):
        # Two records with identical specs (e.g. repetitions whose tags were
        # stripped) are matched by multiplicity, not collapsed into one.
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        twin = _record(scheme="A")
        assert store.sync(ResultSet([twin, twin])) == 2
        assert store.sync(ResultSet([twin, twin])) == 0
        assert len(store.results()) == 2

    def test_sync_into_fresh_store_writes_everything(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        assert store.sync(ResultSet([_record()])) == 1
        assert store.exists()


# --------------------------------------------------------------------------- #
# query
# --------------------------------------------------------------------------- #
class TestWarehouseQuery:
    @pytest.fixture()
    def store(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        for scheme in ("FIGRET", "DOTE"):
            for seed in (0, 1):
                for repetition in (0, 1):
                    store.append(
                        _record(
                            scheme=scheme,
                            tags={
                                "suite": "campaign",
                                "study": "replay",
                                "seed": seed,
                                "repetition": repetition,
                                "machine": "box-2",
                            },
                        )
                    )
        return store

    def test_no_filters_returns_everything(self, store):
        assert len(store.query()) == 8

    def test_label_and_tag_filters_combine(self, store):
        assert len(store.query(scheme="FIGRET")) == 4
        assert len(store.query(scheme="FIGRET", seed=1)) == 2
        assert len(store.query(scheme="FIGRET", seed=1, repetition=0)) == 1
        assert len(store.query(suite="other")) == 0

    def test_collection_and_callable_selectors(self, store):
        assert len(store.query(scheme=["FIGRET", "DOTE"], seed=[0])) == 4
        assert len(store.query(seed=lambda value: value == 0)) == 4

    def test_free_form_tag_and_where_filters(self, store):
        assert len(store.query(tags={"machine": "box-2"})) == 8
        assert len(store.query(tags={"machine": "box-9"})) == 0
        assert len(store.query(where=lambda r: r.tags["repetition"] == 1)) == 4

    def test_query_returns_result_set(self, store):
        assert isinstance(store.query(scheme="DOTE"), ResultSet)


# --------------------------------------------------------------------------- #
# aggregate
# --------------------------------------------------------------------------- #
class TestWarehouseAggregate:
    def _store_with_groups(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        self.series = {
            "FIGRET": [np.array([1.0, 1.1, 1.2, 1.3]), np.array([1.05, 1.15, 1.5, 2.4])],
            "DOTE": [np.array([1.2, 1.4, 1.6, 3.0]), np.array([1.1, 1.3, 1.7, 2.2])],
        }
        self.means = {"FIGRET": [1.15, 1.43], "DOTE": [1.8, 1.58]}
        for scheme, series_list in self.series.items():
            for repetition, series in enumerate(series_list):
                store.append(
                    _record(
                        scheme=scheme,
                        tags={"repetition": repetition},
                        metrics={"mean": self.means[scheme][repetition]},
                        series=series,
                    )
                )
        return store

    def test_mean_and_ci_match_mean_confidence_interval(self, tmp_path):
        store = self._store_with_groups(tmp_path)
        rows = {row["scheme"]: row for row in store.aggregate(group_by=("scheme",))}
        for scheme, values in self.means.items():
            expected_mean, expected_ci = mean_confidence_interval(values, 0.95)
            assert rows[scheme]["n"] == 2
            assert rows[scheme]["mean"] == pytest.approx(expected_mean)
            assert rows[scheme]["ci95"] == pytest.approx(expected_ci)

    def test_percentiles_match_pooled_series_recomputation(self, tmp_path):
        # The acceptance contract: p90/p99 columns equal
        # normalized_mlu_statistics recomputed from the stored series.
        store = self._store_with_groups(tmp_path)
        rows = {row["scheme"]: row for row in store.aggregate(group_by=("scheme",))}
        for scheme, series_list in self.series.items():
            stats = normalized_mlu_statistics(np.concatenate(series_list))
            assert rows[scheme]["p90"] == pytest.approx(stats.p90)
            assert rows[scheme]["p99"] == pytest.approx(stats.p99)
            assert rows[scheme]["worst"] == pytest.approx(stats.worst)
            assert rows[scheme]["severe_congestion_fraction"] == pytest.approx(
                stats.severe_congestion_fraction
            )
            assert rows[scheme]["num_samples"] == stats.num_samples

    def test_single_record_group_has_zero_half_width(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        store.append(_record(metrics={"mean": 1.5}))
        (row,) = store.aggregate(group_by=("scheme",))
        assert row["n"] == 1
        assert row["mean"] == pytest.approx(1.5)
        assert row["ci95"] == 0.0

    def test_confidence_level_names_the_ci_column(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        store.extend([_record(metrics={"mean": 1.0}), _record(metrics={"mean": 2.0})])
        (row,) = store.aggregate(group_by=("scheme",), confidence=0.99)
        assert "ci99" in row
        narrower = store.aggregate(group_by=("scheme",), confidence=0.5)[0]["ci50"]
        assert narrower < row["ci99"]

    def test_group_by_tag_columns(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        for seed in (0, 1):
            for repetition in (0, 1):
                store.append(
                    _record(tags={"seed": seed, "repetition": repetition},
                            metrics={"mean": 1.0 + seed})
                )
        rows = store.aggregate(group_by=("scenario", "seed"))
        assert [(row["seed"], row["n"]) for row in rows] == [(0, 2), (1, 2)]

    def test_missing_metric_and_series_yield_none(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        store.append(_record(metrics={"p90": 2.0}, series=None))
        (row,) = store.aggregate(group_by=("scheme",), metric="mean")
        assert row["mean"] is None and row["ci95"] is None
        assert row["p90"] is None and row["num_samples"] is None

    def test_aggregate_table_renders(self, tmp_path):
        store = self._store_with_groups(tmp_path)
        table = store.aggregate_table(group_by=("scheme",), title="agg")
        lines = table.splitlines()
        assert lines[0] == "agg"
        assert lines[1].startswith("scheme")
        assert len(lines) == 5  # title + header + rule + two groups

    def test_aggregate_empty_store(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        assert store.aggregate() == []
        assert "n" in store.aggregate_table()


# --------------------------------------------------------------------------- #
# run_table / CSV export
# --------------------------------------------------------------------------- #
class TestWarehouseExport:
    def test_run_table_headers_and_missing_values(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        store.append(_record(tags={"suite": "s", "study": "t", "repetition": 0},
                             metrics={"mean": 1.0}))
        store.append(_record(metrics={"mean": 2.0, "p99": 3.0}))
        headers, rows = store.run_table()
        assert headers[:7] == [
            "suite", "study", "seed", "repetition", "scenario", "scheme", "experiment",
        ]
        assert "mean" in headers and "p99" in headers
        assert len(rows) == 2
        untagged = rows[1]
        assert untagged[headers.index("suite")] == ""
        assert untagged[headers.index("p99")] == 3.0
        assert rows[0][headers.index("p99")] == ""

    def test_export_csv_round_trips_row_count(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        store.extend(_record(tags={"repetition": i}, metrics={"mean": 1.0 + i})
                     for i in range(5))
        out = tmp_path / "export" / "table.csv"
        assert store.export_csv(out) == 5
        with open(out, newline="") as handle:
            read_rows = list(csv.reader(handle))
        assert len(read_rows) == 1 + 5
        assert read_rows[0][:4] == ["suite", "study", "seed", "repetition"]
        mean_column = read_rows[0].index("mean")
        assert [row[mean_column] for row in read_rows[1:]] == [
            "1.0", "2.0", "3.0", "4.0", "5.0",
        ]

    def test_export_csv_of_query_slice(self, tmp_path):
        store = ResultWarehouse(tmp_path / "wh.jsonl")
        store.extend([_record(scheme="A"), _record(scheme="B")])
        out = tmp_path / "slice.csv"
        assert store.export_csv(out, store.query(scheme="A")) == 1


# --------------------------------------------------------------------------- #
# Property: append -> load -> query is lossless
# --------------------------------------------------------------------------- #
_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_label = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=10,
)

_wh_record = st.builds(
    lambda scenario, scheme, experiment, seed, repetition, metrics, series: StudyResult(
        scenario=scenario,
        scheme=scheme,
        experiment=experiment,
        spec={
            "scenario": scenario,
            "tags": {"suite": "prop", "seed": seed, "repetition": repetition},
        },
        metrics=metrics,
        series=None if series is None else np.asarray(series, dtype=float),
    ),
    scenario=_label,
    scheme=_label,
    experiment=st.sampled_from(["replay", "fluctuation", "failure"]),
    seed=st.integers(0, 3),
    repetition=st.integers(0, 2),
    metrics=st.dictionaries(_label, _finite, max_size=4),
    series=st.one_of(st.none(), st.lists(_finite, max_size=6)),
)


class TestWarehouseProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(_wh_record, max_size=6))
    def test_append_load_query_round_trip(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("wh") / "wh.jsonl"
        store = ResultWarehouse(path)
        store.extend(records)
        loaded = store.results()
        assert len(loaded) == len(records)
        for before, after in zip(records, loaded):
            assert after.scenario == before.scenario
            assert after.scheme == before.scheme
            assert after.experiment == before.experiment
            assert after.spec == before.spec
            assert after.metrics == before.metrics
            if before.series is None:
                assert after.series is None
            else:
                np.testing.assert_array_equal(after.series, before.series)
        # Tag-filtered query partitions the records exactly.
        for seed in range(4):
            expected = sum(1 for r in records if r.spec["tags"]["seed"] == seed)
            assert len(store.query(seed=seed)) == expected

    @settings(max_examples=10, deadline=None)
    @given(st.lists(_wh_record, min_size=1, max_size=4), st.integers(1, 40))
    def test_torn_tail_recovery_keeps_complete_records(
        self, tmp_path_factory, records, cut
    ):
        path = tmp_path_factory.mktemp("wh") / "wh.jsonl"
        store = ResultWarehouse(path)
        store.extend(records)
        # Tear the final append: keep a strict prefix of the last JSON line
        # (1 .. len-1 chars), which can never itself be valid JSON.
        lines = path.read_text().splitlines(keepends=True)
        last = lines[-1].rstrip("\n")
        torn = last[: 1 + cut % (len(last) - 1)]
        path.write_text("".join(lines[:-1]) + torn)
        with pytest.warns(RuntimeWarning, match="partially written trailing record"):
            loaded = store.results()
        assert len(loaded) == len(records) - 1
        # Compaction restored a clean file: loading again warns nothing.
        assert len(store.results()) == len(records) - 1
