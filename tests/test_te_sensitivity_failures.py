"""Unit tests for path sensitivity and link-failure rerouting (repro.te)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.te.config import TEConfiguration
from repro.te.failures import reroute_around_failures, sample_failed_links
from repro.te.sensitivity import (
    max_sensitivity_per_pair,
    normalized_path_capacities,
    path_sensitivities,
)


class TestSensitivity:
    def test_sensitivity_definition(self, triangle_paths):
        config = TEConfiguration.uniform(triangle_paths)
        sens = path_sensitivities(triangle_paths, config)
        np.testing.assert_allclose(sens, config.split_ratios / triangle_paths.path_capacities)

    def test_normalized_capacities_min_is_one(self, mesh4_paths):
        caps = normalized_path_capacities(mesh4_paths)
        assert caps.min() == pytest.approx(1.0)

    def test_normalized_sensitivity_of_full_allocation_is_one(self, mesh4_paths):
        config = TEConfiguration.shortest_path(mesh4_paths)
        sens = path_sensitivities(mesh4_paths, config, normalized=True)
        # Direct paths carry ratio 1 over normalised capacity 1.
        assert sens.max() == pytest.approx(1.0)

    def test_max_sensitivity_per_pair_shape_and_value(self, mesh4_paths):
        config = TEConfiguration.uniform(mesh4_paths)
        smax = max_sensitivity_per_pair(mesh4_paths, config)
        assert smax.shape == (mesh4_paths.num_sd_pairs,)
        sens = path_sensitivities(mesh4_paths, config)
        for pair_idx, (s, d) in enumerate(mesh4_paths.sd_pairs):
            indices = list(mesh4_paths.path_indices_for(s, d))
            assert smax[pair_idx] == pytest.approx(sens[indices].max())

    def test_hedging_reduces_max_sensitivity(self, mesh4_paths):
        shortest = TEConfiguration.shortest_path(mesh4_paths)
        uniform = TEConfiguration.uniform(mesh4_paths)
        assert (
            max_sensitivity_per_pair(mesh4_paths, uniform).max()
            < max_sensitivity_per_pair(mesh4_paths, shortest).max()
        )


class TestFailureRerouting:
    def test_proportional_redistribution(self, mesh4_paths):
        # Paper example: ratios (0.5, 0.3, 0.2); first path fails -> (0, 0.6, 0.4).
        ratios = np.zeros(mesh4_paths.num_paths)
        for s, d in mesh4_paths.topology.sd_pairs():
            idx = mesh4_paths.path_indices_for(s, d)
            ratios[idx[0]], ratios[idx[1]], ratios[idx[2]] = 0.5, 0.3, 0.2
        config = TEConfiguration(mesh4_paths, ratios, normalize=False)
        # Fail the direct link 0->1 (the first candidate path of pair (0, 1)).
        rerouted = reroute_around_failures(config, {(0, 1)})
        new = rerouted.ratios_for(0, 1)
        np.testing.assert_allclose(new, [0.0, 0.6, 0.4])

    def test_uniform_redistribution_when_survivors_had_zero(self, mesh4_paths):
        # Paper example: ratios (1, 0, 0); first path fails -> (0, 0.5, 0.5).
        config = TEConfiguration.shortest_path(mesh4_paths)
        rerouted = reroute_around_failures(config, {(0, 1)})
        np.testing.assert_allclose(rerouted.ratios_for(0, 1), [0.0, 0.5, 0.5])

    def test_unaffected_pairs_unchanged(self, mesh4_paths):
        config = TEConfiguration.uniform(mesh4_paths)
        rerouted = reroute_around_failures(config, {(0, 1)})
        np.testing.assert_allclose(rerouted.ratios_for(2, 3), config.ratios_for(2, 3))

    def test_result_remains_valid_distribution(self, mesh4_paths):
        config = TEConfiguration.uniform(mesh4_paths)
        rerouted = reroute_around_failures(config, {(0, 1), (1, 0), (2, 3)})
        sums = mesh4_paths.sd_to_path @ rerouted.split_ratios
        np.testing.assert_allclose(sums, 1.0)

    def test_all_paths_failed_keeps_uniform(self, triangle_paths):
        config = TEConfiguration.shortest_path(triangle_paths)
        # Kill both candidate paths of pair (0, 1): direct edge and via node 2.
        rerouted = reroute_around_failures(config, {(0, 1), (2, 1)})
        np.testing.assert_allclose(rerouted.ratios_for(0, 1), [0.5, 0.5])

    def test_no_failures_is_identity(self, mesh4_paths):
        config = TEConfiguration.uniform(mesh4_paths)
        rerouted = reroute_around_failures(config, set())
        np.testing.assert_allclose(rerouted.split_ratios, config.split_ratios)


class TestSampleFailedLinks:
    def test_bidirectional_sampling(self, mesh4_topology, rng):
        failed = sample_failed_links(mesh4_topology, 2, rng)
        assert len(failed) == 4  # two physical links, both directions
        for a, b in failed:
            assert (b, a) in failed

    def test_unidirectional_sampling(self, mesh4_topology, rng):
        failed = sample_failed_links(mesh4_topology, 3, rng, bidirectional=False)
        assert len(failed) == 3

    def test_too_many_failures_rejected(self, triangle_topology, rng):
        with pytest.raises(ValueError):
            sample_failed_links(triangle_topology, 100, rng)

    def test_failed_edges_exist_in_topology(self, mesh4_topology, rng):
        failed = sample_failed_links(mesh4_topology, 2, rng)
        for a, b in failed:
            assert mesh4_topology.has_edge(a, b)
