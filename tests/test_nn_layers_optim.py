"""Unit tests for neural network layers and optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Linear, Module, ReLU, SGD, Sequential, Sigmoid, Tensor, clip_gradient_norm


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.random((4, 5))))
        assert out.shape == (4, 3)

    def test_linear_parameters_registered(self, rng):
        layer = Linear(5, 3, rng=rng)
        params = layer.parameters()
        assert len(params) == 2
        assert layer.num_parameters() == 5 * 3 + 3

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_linear_initialisation_bounds(self, rng):
        layer = Linear(100, 50, rng=rng)
        bound = 1.0 / np.sqrt(100)
        assert np.abs(layer.weight.data).max() <= bound
        assert np.abs(layer.bias.data).max() <= bound

    def test_sequential_composition(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng), Sigmoid())
        out = model(Tensor(rng.random((3, 4))))
        assert out.shape == (3, 2)
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_sequential_requires_modules(self):
        with pytest.raises(ValueError):
            Sequential()

    def test_sequential_collects_nested_parameters(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        assert len(model.parameters()) == 4

    def test_zero_grad_clears_all(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 1, rng=rng))
        out = model(Tensor(rng.random((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_round_trip(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 1, rng=rng))
        other = Sequential(Linear(4, 4, rng=np.random.default_rng(99)), ReLU(), Linear(4, 1, rng=np.random.default_rng(98)))
        x = Tensor(rng.random((2, 4)))
        state = model.state_dict()
        other.load_state_dict(state)
        np.testing.assert_allclose(model(x).data, other(x).data)

    def test_load_state_dict_shape_mismatch(self, rng):
        model = Linear(4, 4, rng=rng)
        other = Linear(4, 5, rng=rng)
        with pytest.raises(ValueError):
            other.load_state_dict(model.state_dict())


class _Quadratic(Module):
    """Minimise ||x - target||^2: a tiny optimisation problem for optimizer tests."""

    def __init__(self, start: np.ndarray) -> None:
        self.x = Tensor(start, requires_grad=True)

    def loss(self, target: np.ndarray) -> Tensor:
        diff = self.x - target
        return (diff * diff).sum()


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        model = _Quadratic(np.zeros(3))
        opt = SGD(model.parameters(), lr=0.1)
        for _ in range(200):
            loss = model.loss(target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(model.x.data, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        target = np.array([0.5, 0.5])
        model = _Quadratic(np.zeros(2))
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        for _ in range(200):
            loss = model.loss(target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(model.x.data, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        target = np.array([2.0, -1.0, 0.5, 4.0])
        model = _Quadratic(np.zeros(4))
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(500):
            loss = model.loss(target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(model.x.data, target, atol=1e-3)

    def test_adam_skips_parameters_without_grad(self):
        param = Tensor(np.ones(3), requires_grad=True)
        opt = Adam([param], lr=0.1)
        opt.step()  # no gradient accumulated; should be a no-op
        np.testing.assert_allclose(param.data, 1.0)

    def test_invalid_hyperparameters(self):
        param = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([param], lr=0.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam([param], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([param], betas=(1.2, 0.9))

    def test_clip_gradient_norm(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        a.grad = np.full(3, 3.0)
        b.grad = np.full(2, 4.0)
        norm = clip_gradient_norm([a, b], max_norm=1.0)
        assert norm == pytest.approx(np.sqrt(9 * 3 + 16 * 2))
        new_norm = np.sqrt(np.sum(a.grad**2) + np.sum(b.grad**2))
        assert new_norm == pytest.approx(1.0)

    def test_clip_noop_when_under_threshold(self):
        a = Tensor(np.ones(2), requires_grad=True)
        a.grad = np.array([0.1, 0.1])
        clip_gradient_norm([a], max_norm=10.0)
        np.testing.assert_allclose(a.grad, [0.1, 0.1])

    def test_clip_requires_positive_max_norm(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError):
            clip_gradient_norm([a], max_norm=0.0)
