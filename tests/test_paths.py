"""Unit tests for repro.paths (PathSet, Yen's KSP, Racke-style selection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths.ksp import build_ksp_path_set, k_shortest_paths
from repro.paths.path_set import PathSet
from repro.paths.racke import racke_path_set
from repro.topology import generators
from repro.topology.graph import Topology


class TestKShortestPaths:
    def test_shortest_first(self, mesh4_topology):
        paths = k_shortest_paths(mesh4_topology, 0, 1, k=3)
        assert paths[0] == [0, 1]
        assert len(paths) == 3
        assert all(p[0] == 0 and p[-1] == 1 for p in paths)

    def test_fewer_paths_when_graph_is_thin(self, line_topology):
        paths = k_shortest_paths(line_topology, 0, 3, k=3)
        assert paths == [[0, 1, 2, 3]]

    def test_paths_are_simple(self, mesh4_topology):
        for path in k_shortest_paths(mesh4_topology, 0, 2, k=3):
            assert len(set(path)) == len(path)

    def test_inverse_capacity_weighting_prefers_fat_links(self):
        # 0 -> 2 direct is thin; through 1 both links are fat.
        topo = Topology(
            3,
            [(0, 2, 1.0), (0, 1, 100.0), (1, 2, 100.0), (2, 0, 1.0), (1, 0, 100.0), (2, 1, 100.0)],
        )
        hop_paths = k_shortest_paths(topo, 0, 2, k=1)
        cap_paths = k_shortest_paths(topo, 0, 2, k=1, weight="inv_capacity")
        assert hop_paths[0] == [0, 2]
        assert cap_paths[0] == [0, 1, 2]


class TestBuildKspPathSet:
    def test_every_pair_served(self, mesh4_topology):
        ps = build_ksp_path_set(mesh4_topology, k=3)
        assert ps.num_sd_pairs == 12
        assert ps.num_paths == 36
        for s, d in mesh4_topology.sd_pairs():
            assert len(ps.paths_for(s, d)) == 3

    def test_first_candidate_is_shortest(self, mesh4_topology):
        ps = build_ksp_path_set(mesh4_topology, k=3)
        for s, d in mesh4_topology.sd_pairs():
            assert ps.paths_for(s, d)[0] == (s, d)

    def test_line_topology_has_single_paths(self, line_topology):
        ps = build_ksp_path_set(line_topology, k=3)
        assert ps.max_paths_per_pair == 1
        assert ps.num_paths == line_topology.num_sd_pairs


class TestPathSetStructure:
    def test_path_to_edge_row_sums_equal_hop_count(self, mesh4_paths):
        incidence = mesh4_paths.path_to_edge.toarray()
        for p_idx, nodes in enumerate(mesh4_paths.paths):
            assert incidence[p_idx].sum() == len(nodes) - 1

    def test_sd_to_path_groups_paths(self, mesh4_paths):
        grouping = mesh4_paths.sd_to_path.toarray()
        np.testing.assert_allclose(grouping.sum(axis=0), 1.0)  # each path serves one pair
        np.testing.assert_allclose(grouping.sum(axis=1), 3.0)  # three paths per pair

    def test_path_capacities_are_bottlenecks(self):
        topo = Topology(3, [(0, 1, 5.0), (1, 2, 2.0), (0, 2, 9.0), (2, 0, 9.0), (1, 0, 5.0), (2, 1, 2.0)])
        ps = PathSet(topo, {pair: [[pair[0], pair[1]]] if topo.has_edge(*pair) else [[pair[0], 3 - pair[0] - pair[1], pair[1]]] for pair in topo.sd_pairs()})
        two_hop = ps.paths_for(0, 2)[0]
        assert two_hop == (0, 2)
        # Build one explicitly with a 2-hop path to check the bottleneck.
        ps2 = PathSet(topo, {**{pair: [[pair[0], pair[1]]] for pair in topo.sd_pairs() if topo.has_edge(*pair)}, (0, 2): [[0, 1, 2]]})
        idx = ps2.path_indices_for(0, 2)[0]
        assert ps2.path_capacities[idx] == 2.0  # min(5, 2)

    def test_demand_vector_flattening(self, mesh4_paths):
        matrix = np.arange(16, dtype=float).reshape(4, 4)
        vector = mesh4_paths.demand_vector(matrix)
        assert vector.shape == (12,)
        assert vector[0] == matrix[0, 1]
        assert matrix[1, 1] not in vector or True  # diagonal excluded by construction

    def test_demand_vector_wrong_shape_raises(self, mesh4_paths):
        with pytest.raises(ValueError):
            mesh4_paths.demand_vector(np.zeros((3, 3)))

    def test_demand_per_path_gathers_pairs(self, mesh4_paths):
        vector = np.arange(12, dtype=float)
        per_path = mesh4_paths.demand_per_path(vector)
        assert per_path.shape == (36,)
        for p_idx in range(36):
            assert per_path[p_idx] == vector[mesh4_paths.path_sd_index[p_idx]]

    def test_restrict_to_working_paths(self, mesh4_paths):
        mask = mesh4_paths.restrict_to_working_paths({(0, 1)})
        for p_idx, nodes in enumerate(mesh4_paths.paths):
            uses_failed = any(a == 0 and b == 1 for a, b in zip(nodes[:-1], nodes[1:]))
            assert mask[p_idx] == (not uses_failed)

    def test_validation_rejects_bad_paths(self, mesh4_topology):
        pairs = {pair: [[pair[0], pair[1]]] for pair in mesh4_topology.sd_pairs()}
        pairs[(0, 1)] = [[0, 2, 1], [0, 1]]
        ok = PathSet(mesh4_topology, pairs)
        assert ok.num_paths == 13

        bad_endpoint = dict(pairs)
        bad_endpoint[(0, 1)] = [[0, 2]]
        with pytest.raises(ValueError, match="does not connect"):
            PathSet(mesh4_topology, bad_endpoint)

        with_loop = dict(pairs)
        with_loop[(0, 1)] = [[0, 2, 0, 1]]
        with pytest.raises(ValueError, match="loop"):
            PathSet(mesh4_topology, with_loop)

        missing_pair = {k: v for k, v in pairs.items() if k != (2, 3)}
        with pytest.raises(ValueError, match="no candidate path"):
            PathSet(mesh4_topology, missing_pair)

    def test_nonexistent_edge_rejected(self, line_topology):
        pairs = {pair: [[pair[0], pair[1]]] for pair in line_topology.sd_pairs()}
        with pytest.raises(ValueError, match="non-existent edge"):
            PathSet(line_topology, pairs)


class TestRackePathSet:
    def test_every_pair_has_paths(self, mesh4_topology):
        ps = racke_path_set(mesh4_topology, k=3, seed=0)
        assert ps.num_sd_pairs == 12
        for s, d in mesh4_topology.sd_pairs():
            assert 1 <= len(ps.paths_for(s, d)) <= 3

    def test_paths_are_more_diverse_than_ksp_on_heterogeneous_wan(self):
        topo = generators.wan_like(12, 16, seed=4)
        racke = racke_path_set(topo, k=3, seed=0)
        # Average number of distinct edges used across all candidate paths
        # should not be lower than for plain hop-count KSP (capacity-aware
        # selection spreads over more links).
        ksp = build_ksp_path_set(topo, k=3)
        racke_edges = set()
        for nodes in racke.paths:
            racke_edges.update(zip(nodes[:-1], nodes[1:]))
        ksp_edges = set()
        for nodes in ksp.paths:
            ksp_edges.update(zip(nodes[:-1], nodes[1:]))
        assert len(racke_edges) >= len(ksp_edges) * 0.9

    def test_deterministic_for_seed(self, mesh4_topology):
        a = racke_path_set(mesh4_topology, k=2, seed=7)
        b = racke_path_set(mesh4_topology, k=2, seed=7)
        assert a.paths == b.paths
