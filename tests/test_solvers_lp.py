"""Unit tests for the MLU LP solver and the prediction-based schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.lp import (
    LPSolveError,
    OmniscientTE,
    PredictionBasedTE,
    omniscient_mlu,
    predict_demand,
    solve_mlu_lp,
)
from repro.te.mlu import max_link_utilization
from repro.topology import generators
from repro.paths.ksp import build_ksp_path_set


def _figure3_demand(a_b: float = 1.0, a_c: float = 1.0, b_c: float = 1.0) -> np.ndarray:
    demand = np.zeros((3, 3))
    demand[0, 1], demand[0, 2], demand[1, 2] = a_b, a_c, b_c
    return demand


class TestSolveMluLP:
    def test_figure3_normal_case_optimum(self, triangle_paths):
        dv = triangle_paths.demand_vector(_figure3_demand())
        config, mlu = solve_mlu_lp(triangle_paths, dv)
        assert mlu == pytest.approx(0.5, abs=1e-6)
        # The LP's reported objective matches the evaluated configuration.
        assert max_link_utilization(triangle_paths, config, dv) == pytest.approx(mlu, abs=1e-6)

    def test_lp_never_worse_than_heuristics(self, mesh4_paths, rng):
        from repro.te.config import TEConfiguration

        demand = rng.random(mesh4_paths.num_sd_pairs) * 3.0
        _, optimal = solve_mlu_lp(mesh4_paths, demand)
        for heuristic in (TEConfiguration.uniform(mesh4_paths), TEConfiguration.shortest_path(mesh4_paths)):
            assert optimal <= max_link_utilization(mesh4_paths, heuristic, demand) + 1e-9

    def test_split_ratios_sum_to_one(self, mesh4_paths, rng):
        demand = rng.random(mesh4_paths.num_sd_pairs)
        config, _ = solve_mlu_lp(mesh4_paths, demand)
        sums = mesh4_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-6)

    def test_zero_demand_gives_zero_mlu(self, mesh4_paths):
        _, mlu = solve_mlu_lp(mesh4_paths, np.zeros(mesh4_paths.num_sd_pairs))
        assert mlu == pytest.approx(0.0, abs=1e-9)

    def test_mlu_scales_linearly_with_demand(self, mesh4_paths, rng):
        demand = rng.random(mesh4_paths.num_sd_pairs)
        _, mlu = solve_mlu_lp(mesh4_paths, demand)
        _, double = solve_mlu_lp(mesh4_paths, demand * 2)
        assert double == pytest.approx(2 * mlu, rel=1e-6)

    def test_sensitivity_caps_respected(self, mesh4_paths, rng):
        demand = rng.random(mesh4_paths.num_sd_pairs)
        caps = np.full(mesh4_paths.num_paths, 0.5)
        config, _ = solve_mlu_lp(mesh4_paths, demand, sensitivity_caps=caps)
        assert config.split_ratios.max() <= 0.5 + 1e-6

    def test_sensitivity_caps_increase_mlu(self, mesh4_paths, rng):
        demand = rng.random(mesh4_paths.num_sd_pairs)
        _, unconstrained = solve_mlu_lp(mesh4_paths, demand)
        _, constrained = solve_mlu_lp(
            mesh4_paths, demand, sensitivity_caps=np.full(mesh4_paths.num_paths, 0.4)
        )
        assert constrained >= unconstrained - 1e-9

    def test_infeasible_caps_are_relaxed(self, mesh4_paths, rng):
        # Caps summing to < 1 per pair would be infeasible; the solver must
        # relax them (Appendix C.1's feasibility caveat) instead of failing.
        demand = rng.random(mesh4_paths.num_sd_pairs)
        caps = np.full(mesh4_paths.num_paths, 0.2)
        config, _ = solve_mlu_lp(mesh4_paths, demand, sensitivity_caps=caps)
        sums = mesh4_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-6)

    def test_path_mask_excludes_failed_paths(self, mesh4_paths, rng):
        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.5
        mask = mesh4_paths.restrict_to_working_paths({(0, 1)})
        config, _ = solve_mlu_lp(mesh4_paths, demand, path_mask=mask)
        for p_idx, ratio in enumerate(config.split_ratios):
            if not mask[p_idx]:
                assert ratio <= 1e-9

    def test_wrong_cap_shape_rejected(self, mesh4_paths):
        with pytest.raises(ValueError):
            solve_mlu_lp(mesh4_paths, np.ones(mesh4_paths.num_sd_pairs), sensitivity_caps=np.ones(3))

    def test_wrong_mask_shape_rejected(self, mesh4_paths):
        with pytest.raises(ValueError):
            solve_mlu_lp(mesh4_paths, np.ones(mesh4_paths.num_sd_pairs), path_mask=np.ones(3, dtype=bool))


class TestOmniscientMlu:
    def test_positive_floor_for_zero_demand(self, triangle_paths):
        assert omniscient_mlu(triangle_paths, np.zeros(triangle_paths.num_sd_pairs)) > 0

    def test_matches_lp(self, mesh4_paths, rng):
        demand = rng.random(mesh4_paths.num_sd_pairs)
        _, mlu = solve_mlu_lp(mesh4_paths, demand)
        assert omniscient_mlu(mesh4_paths, demand) == pytest.approx(mlu)


class TestPredictDemand:
    def test_last(self):
        history = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(predict_demand(history, "last"), [3, 4])

    def test_mean(self):
        history = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(predict_demand(history, "mean"), [2, 3])

    def test_peak(self):
        history = np.array([[1.0, 5.0], [3.0, 4.0]])
        np.testing.assert_allclose(predict_demand(history, "peak"), [3, 5])

    def test_ewma_weights_recent_more(self):
        history = np.array([[0.0, 0.0], [10.0, 10.0]])
        ewma = predict_demand(history, "ewma")
        assert (ewma > 5.0).all()

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            predict_demand(np.ones((2, 2)), "magic")

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            predict_demand(np.ones(3), "last")


class TestSchemes:
    def test_omniscient_scheme_achieves_optimal(self, mesh4_paths, rng):
        scheme = OmniscientTE(mesh4_paths)
        demand = rng.random(mesh4_paths.num_sd_pairs)
        config = scheme.configure(demand[None, :])
        achieved = max_link_utilization(mesh4_paths, config, demand)
        assert achieved == pytest.approx(omniscient_mlu(mesh4_paths, demand), rel=1e-6)

    def test_prediction_scheme_optimal_under_stable_traffic(self, mesh4_paths, rng):
        scheme = PredictionBasedTE(mesh4_paths)
        demand = rng.random(mesh4_paths.num_sd_pairs) + 1.0
        history = np.tile(demand, (4, 1))
        config = scheme.configure(history)
        achieved = max_link_utilization(mesh4_paths, config, demand)
        assert achieved == pytest.approx(omniscient_mlu(mesh4_paths, demand), rel=1e-5)

    def test_prediction_scheme_hurt_by_burst(self, mesh4_paths, rng):
        scheme = PredictionBasedTE(mesh4_paths)
        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.5
        history = np.tile(demand, (4, 1))
        config = scheme.configure(history)
        burst = demand.copy()
        burst[0] *= 10.0
        achieved = max_link_utilization(mesh4_paths, config, burst)
        assert achieved > omniscient_mlu(mesh4_paths, burst) * 1.05


class TestProcessPoolFallback:
    """A broken process pool degrades to sequential solves with ONE warning."""

    @pytest.fixture()
    def broken_pool(self, monkeypatch):
        import pickle

        from repro.solvers import lp as lp_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, jobs):
                raise pickle.PicklingError("cannot pickle the path set")

        monkeypatch.setattr(lp_module, "ProcessPoolExecutor", ExplodingPool)
        # Isolate the long-lived pool cache: a real pool created by an
        # earlier test must not serve this batch, and the exploding pool
        # must not leak to later tests.
        monkeypatch.setattr(lp_module, "_POOL_CACHE", {})
        monkeypatch.setattr(lp_module, "_POOL_FALLBACK_WARNED", False)
        return lp_module

    def test_fallback_warns_once_and_matches_sequential(
        self, broken_pool, mesh4_paths, rng
    ):
        from repro.solvers.lp import solve_mlu_lp_batch

        # Pinned to scipy: the test exercises pool-fallback machinery, and
        # only the stateless scipy backend guarantees bit-identical split
        # ratios between two solves of the same demand (warm-started highs
        # may return a different optimal vertex depending on solve history).
        demands = rng.random((4, mesh4_paths.num_sd_pairs)) + 0.1
        sequential = solve_mlu_lp_batch(mesh4_paths, demands, backend="scipy")
        with pytest.warns(RuntimeWarning, match="process-pool LP batch failed"):
            pooled = solve_mlu_lp_batch(
                mesh4_paths, demands, workers=2, backend="scipy"
            )
        for (expected_config, expected_mlu), (config, mlu) in zip(sequential, pooled):
            assert mlu == pytest.approx(expected_mlu, abs=1e-9)
            np.testing.assert_allclose(
                config.split_ratios, expected_config.split_ratios, atol=1e-9
            )
        # The warning fires once per process, not once per batch.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            again = solve_mlu_lp_batch(
                mesh4_paths, demands, workers=2, backend="scipy"
            )
        assert [mlu for _, mlu in again] == [mlu for _, mlu in pooled]

    def test_counter_increments_on_fallback_solves(self, broken_pool, mesh4_paths, rng):
        from repro.solvers.lp import lp_solve_calls, solve_mlu_lp_batch

        demands = rng.random((3, mesh4_paths.num_sd_pairs)) + 0.1
        before = lp_solve_calls()
        with pytest.warns(RuntimeWarning):
            solve_mlu_lp_batch(mesh4_paths, demands, workers=2)
        assert lp_solve_calls() == before + len(demands)


class TestScopedSolveCounter:
    """count_lp_solves scopes the process-global counter per consumer."""

    def test_tally_counts_only_inside_scope(self, mesh4_paths, rng):
        from repro.solvers.lp import count_lp_solves, solve_mlu_lp

        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.1
        solve_mlu_lp(mesh4_paths, demand)  # outside: must not be counted
        with count_lp_solves() as tally:
            assert tally.count == 0
            solve_mlu_lp(mesh4_paths, demand)
            solve_mlu_lp(mesh4_paths, demand)
            assert tally.count == 2
        # The tally keeps counting after the scope exits...
        solve_mlu_lp(mesh4_paths, demand)
        assert tally.count == 3
        # ...and reset() rebaselines it.
        tally.reset()
        assert tally.count == 0

    def test_nested_scopes_are_independent(self, mesh4_paths, rng):
        from repro.solvers.lp import count_lp_solves, solve_mlu_lp

        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.1
        with count_lp_solves() as outer:
            solve_mlu_lp(mesh4_paths, demand)
            with count_lp_solves() as inner:
                solve_mlu_lp(mesh4_paths, demand)
                assert inner.count == 1
            assert outer.count == 2

    def test_matches_global_counter_delta(self, mesh4_paths, rng):
        from repro.solvers.lp import count_lp_solves, lp_solve_calls, solve_mlu_lp_batch

        demands = rng.random((3, mesh4_paths.num_sd_pairs)) + 0.1
        before = lp_solve_calls()
        with count_lp_solves() as tally:
            solve_mlu_lp_batch(mesh4_paths, demands)
        assert tally.count == lp_solve_calls() - before == len(demands)


class TestAutoWorkers:
    """'auto' is a valid workers value at every layer, not just the engine."""

    def test_batch_solver_accepts_auto(self, mesh4_paths, rng):
        from repro.solvers.lp import solve_mlu_lp_batch

        demands = rng.random((3, mesh4_paths.num_sd_pairs)) + 0.1
        auto = solve_mlu_lp_batch(mesh4_paths, demands, workers="auto")
        sequential = solve_mlu_lp_batch(mesh4_paths, demands)
        for (_, expected), (_, mlu) in zip(sequential, auto):
            assert mlu == pytest.approx(expected, abs=1e-9)

    def test_cache_and_trainer_accept_auto(self, mesh4_paths, rng):
        from repro.solvers.lp import OptimalMLUCache

        demands = rng.random((2, mesh4_paths.num_sd_pairs)) + 0.1
        values = OptimalMLUCache().optimal_mlus(mesh4_paths, demands, workers="auto")
        assert np.isfinite(values).all()

    def test_other_strings_rejected(self, mesh4_paths, rng):
        from repro.solvers.lp import resolve_lp_workers

        with pytest.raises(ValueError, match="auto"):
            resolve_lp_workers("many")

    def test_default_lp_workers_positive(self):
        from repro.solvers.lp import default_lp_workers

        assert default_lp_workers() >= 1


class TestWorkersEnvDefault:
    """REPRO_LP_WORKERS is a first-class default of resolve_lp_workers."""

    def test_env_sets_default_width(self, monkeypatch):
        from repro.solvers.lp import resolve_lp_workers

        monkeypatch.setenv("REPRO_LP_WORKERS", "3")
        assert resolve_lp_workers(None) == 3

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        from repro.solvers.lp import resolve_lp_workers

        monkeypatch.setenv("REPRO_LP_WORKERS", "3")
        assert resolve_lp_workers(2) == 2

    def test_env_auto(self, monkeypatch):
        from repro.solvers.lp import default_lp_workers, resolve_lp_workers

        monkeypatch.setenv("REPRO_LP_WORKERS", "auto")
        assert resolve_lp_workers(None) == default_lp_workers()

    def test_blank_env_means_unset(self, monkeypatch):
        from repro.solvers.lp import resolve_lp_workers

        monkeypatch.setenv("REPRO_LP_WORKERS", "   ")
        assert resolve_lp_workers(None) is None

    @pytest.mark.parametrize("bad", ["many", "0", "-2", "2.5"])
    def test_contradictory_env_rejected_with_accepted_forms(self, monkeypatch, bad):
        from repro.solvers.lp import resolve_lp_workers

        monkeypatch.setenv("REPRO_LP_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_LP_WORKERS must be"):
            resolve_lp_workers(None)

    def test_use_env_false_ignores_env(self, monkeypatch):
        from repro.solvers.lp import resolve_lp_workers

        monkeypatch.setenv("REPRO_LP_WORKERS", "3")
        assert resolve_lp_workers(None, use_env=False) is None
        # ...even a malformed one: the knob opting out must not validate it.
        monkeypatch.setenv("REPRO_LP_WORKERS", "many")
        assert resolve_lp_workers(None, use_env=False) is None


def _importable(name: str) -> bool:
    from repro.solvers.lp_backend import importable_lp_backends

    return name in importable_lp_backends()


class TestBackendEquivalence:
    """The scipy and persistent-highs backends solve the same LP."""

    pytestmark = pytest.mark.skipif(
        not _importable("highs"),
        reason="no importable highs backend (highspy or scipy-vendored HiGHS)",
    )

    @pytest.fixture()
    def backends(self):
        from repro.solvers.lp_backend import PersistentHighsBackend, ScipyLinprogBackend

        return ScipyLinprogBackend(), PersistentHighsBackend()

    def test_hypothesis_same_mlu_across_demands_caps_masks(
        self, mesh4_paths, backends
    ):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        scipy_backend, highs_backend = backends
        num_pairs = mesh4_paths.num_sd_pairs
        num_paths = mesh4_paths.num_paths

        @settings(max_examples=30, deadline=None)
        @given(
            demand=st.lists(
                st.floats(0.0, 10.0, allow_nan=False),
                min_size=num_pairs,
                max_size=num_pairs,
            ),
            caps=st.one_of(
                st.none(),
                st.lists(
                    st.floats(0.0, 1.0, allow_nan=False),
                    min_size=num_paths,
                    max_size=num_paths,
                ),
            ),
            mask=st.one_of(
                st.none(),
                st.lists(st.booleans(), min_size=num_paths, max_size=num_paths),
            ),
        )
        def check(demand, caps, mask):
            from repro.solvers.lp import solve_mlu_lp

            kwargs = dict(
                sensitivity_caps=None if caps is None else np.array(caps),
                path_mask=None if mask is None else np.array(mask, dtype=bool),
            )
            _, scipy_mlu = solve_mlu_lp(
                mesh4_paths, np.array(demand), backend=scipy_backend, **kwargs
            )
            _, highs_mlu = solve_mlu_lp(
                mesh4_paths, np.array(demand), backend=highs_backend, **kwargs
            )
            assert highs_mlu == pytest.approx(scipy_mlu, abs=1e-9)

        check()

    def test_highs_configuration_achieves_the_optimal_mlu(
        self, mesh4_paths, rng, backends
    ):
        # Degenerate LPs may have several optimal vertices, so the *ratios*
        # can differ between backends; what must hold is that the highs
        # configuration actually achieves the reported (shared) optimum.
        from repro.solvers.lp import solve_mlu_lp

        _, highs_backend = backends
        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.2
        config, mlu = solve_mlu_lp(mesh4_paths, demand, backend=highs_backend)
        achieved = max_link_utilization(mesh4_paths, config, demand)
        assert achieved == pytest.approx(mlu, abs=1e-6)

    def test_caps_respected_by_highs_backend(self, mesh4_paths, rng, backends):
        from repro.solvers.lp import solve_mlu_lp

        _, highs_backend = backends
        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.2
        caps = np.full(mesh4_paths.num_paths, 0.5)
        config, _ = solve_mlu_lp(
            mesh4_paths, demand, sensitivity_caps=caps, backend=highs_backend
        )
        assert config.split_ratios.max() <= 0.5 + 1e-6


class TestInfeasibleLP:
    """Both backends surface solver failures as LPSolveError with a message."""

    @pytest.fixture()
    def force_zero_upper(self, monkeypatch):
        # All ratio upper bounds zero + the per-pair sum-to-one equality is
        # infeasible.  _ratio_upper_bounds itself relaxes over-tight caps
        # (Appendix C.1), so infeasibility is forced behind its back -- also
        # covering the "solver fails anyway" path the relaxation cannot reach.
        from repro.solvers import lp as lp_module

        monkeypatch.setattr(
            lp_module,
            "_ratio_upper_bounds",
            lambda path_set, caps, mask: np.zeros(path_set.num_paths),
        )

    def _solve_infeasible(self, path_set, backend):
        from repro.solvers.lp import solve_mlu_lp

        # A non-None mask routes past the trivial-bounds fast path into the
        # (patched) _ratio_upper_bounds.
        solve_mlu_lp(
            path_set,
            np.ones(path_set.num_sd_pairs),
            path_mask=np.ones(path_set.num_paths, dtype=bool),
            backend=backend,
        )

    def test_scipy_backend_raises_with_solver_message(
        self, mesh4_paths, force_zero_upper
    ):
        with pytest.raises(LPSolveError, match="MLU LP failed: .+"):
            self._solve_infeasible(mesh4_paths, "scipy")

    @pytest.mark.skipif(
        not _importable("highs"), reason="no importable highs backend"
    )
    def test_highs_backend_raises_with_solver_message(
        self, mesh4_paths, force_zero_upper
    ):
        with pytest.raises(LPSolveError, match="MLU LP failed: .+"):
            self._solve_infeasible(mesh4_paths, "highs")
