"""Suite descriptors: expansion semantics, execution, CLI, warehouse wiring.

The acceptance contract pinned here:

* a 2-study x 3-seed x 2-repetition suite expands study-major with
  ``suite`` / ``study`` / ``seed`` / ``repetition`` provenance stamped into
  every cell's tags;
* the suite seed rewrites declarative scenario references (pinned scenario /
  traffic seeds conflict loudly) and fills unset perturbation seeds (pinned
  ones are common random numbers and win);
* an interrupted suite resumed from its checkpoint finishes with zero repeat
  LP solves / trainings for finished cells and a warehouse holding every
  record exactly once;
* the ``suite`` / ``query`` / ``export`` CLI subcommands drive the same path
  end-to-end, and the CSV export round-trips the record count.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.evaluation.engine import EvaluationEngine
from repro.solvers.lp import count_lp_solves
from repro.study import (
    ResultSet,
    ResultWarehouse,
    StudyCheckpoint,
    Suite,
    expand_suite,
)
from repro.study.__main__ import main as study_cli


def scenario_config(name: str, num_intervals: int = 20) -> dict:
    """An inline scenario config with no pinned traffic seed."""
    return {
        "name": name,
        "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
        "traffic": {"kind": "datacenter", "level": "pod", "num_intervals": num_intervals},
        "history_len": 3,
    }


CHEAP_SCHEME = {
    "kind": "figret", "epochs": 1, "history_len": 3,
    "normalize_by_optimal": False, "seed": 0,
}


def acceptance_descriptor() -> dict:
    """The 2-study x 3-seed x 2-repetition acceptance suite (18 cells)."""
    return {
        "name": "acceptance",
        "annotations": {"machine": "ci"},
        "seeds": [1, 2, 3],
        "repetitions": 2,
        "studies": [
            {"name": "replay",
             "annotations": {"axis": "baseline"},
             "spec": {
                 "scenario": "geant_small",
                 "scheme": {"sweep": [{"kind": "figret"}, {"kind": "dote"}]},
                 "max_intervals": 4,
             }},
            {"name": "fluct",
             "spec": {
                 "scenario": "geant_small",
                 "scheme": {"kind": "figret"},
                 "perturbation": {"kind": "fluctuation", "alpha": 0.5},
                 "max_intervals": 4,
             }},
        ],
    }


# --------------------------------------------------------------------------- #
# Expansion
# --------------------------------------------------------------------------- #
class TestExpandSuite:
    def test_acceptance_suite_expands_study_major(self):
        cells = expand_suite(acceptance_descriptor())
        # (2 schemes + 1 scheme) x 3 seeds x 2 repetitions
        assert len(cells) == 18
        tags = [cell.tags for cell in cells]
        assert all(tag["suite"] == "acceptance" for tag in tags)
        assert [tag["study"] for tag in tags] == ["replay"] * 12 + ["fluct"] * 6
        # Study-major, then seed, then repetition, then the study's own grid.
        assert [tag["seed"] for tag in tags[:12]] == [1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]
        assert [tag["repetition"] for tag in tags[:4]] == [0, 0, 1, 1]

    def test_annotations_flow_into_tags(self):
        cells = expand_suite(acceptance_descriptor())
        assert cells[0].tags["machine"] == "ci"
        assert cells[0].tags["axis"] == "baseline"
        assert "axis" not in cells[-1].tags  # study annotations stay per-study

    def test_seed_rewrites_bare_scenario_name(self):
        cells = expand_suite({"seeds": [7], "studies": [
            {"spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME}},
        ]})
        assert cells[0].scenario == {"name": "geant_small", "seed": 7}

    def test_seed_rewrites_registry_reference(self):
        cells = expand_suite({"seeds": [7], "studies": [
            {"spec": {"scenario": {"name": "geant_small", "num_intervals": 8},
                      "scheme": CHEAP_SCHEME}},
        ]})
        assert cells[0].scenario == {"name": "geant_small", "num_intervals": 8, "seed": 7}

    def test_seed_rewrites_inline_traffic_config(self):
        cells = expand_suite({"seeds": [7], "studies": [
            {"spec": {"scenario": scenario_config("inline"), "scheme": CHEAP_SCHEME}},
        ]})
        assert cells[0].scenario["traffic"]["seed"] == 7

    def test_pinned_registry_seed_conflicts_with_seeds_axis(self):
        with pytest.raises(ValueError, match="pins scenario seed 3"):
            expand_suite({"seeds": [1, 2], "studies": [
                {"spec": {"scenario": {"name": "geant_small", "seed": 3},
                          "scheme": CHEAP_SCHEME}},
            ]})

    def test_pinned_inline_traffic_seed_conflicts_with_seeds_axis(self):
        config = scenario_config("pinned")
        config["traffic"]["seed"] = 5
        with pytest.raises(ValueError, match="pins traffic seed 5"):
            expand_suite({"seeds": [1, 2], "studies": [
                {"spec": {"scenario": config, "scheme": CHEAP_SCHEME}},
            ]})

    def test_no_seeds_axis_leaves_scenario_and_tags_alone(self):
        cells = expand_suite({"studies": [
            {"spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME}},
        ]})
        assert cells[0].scenario == "geant_small"
        assert "seed" not in cells[0].tags
        assert cells[0].tags["repetition"] == 0

    def test_suite_seed_fills_unset_perturbation_seed(self):
        cells = expand_suite({"seeds": [9], "studies": [
            {"spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME,
                      "perturbation": {"kind": "fluctuation", "alpha": 0.5}}},
        ]})
        assert cells[0].perturbation["seed"] == 9

    def test_pinned_perturbation_seed_is_common_random_numbers(self):
        cells = expand_suite({"seeds": [1, 2], "studies": [
            {"spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME,
                      "perturbation": {"kind": "fluctuation", "alpha": 0.5, "seed": 7}}},
        ]})
        assert [cell.perturbation["seed"] for cell in cells] == [7, 7]

    def test_unseeded_perturbation_kinds_stay_untouched(self):
        cells = expand_suite({"seeds": [4], "studies": [
            {"spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME,
                      "perturbation": {"kind": "none"}}},
        ]})
        assert "seed" not in cells[0].perturbation

    def test_reserved_keys_rejected_in_annotations_and_tags(self):
        base = {"studies": [{"spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME}}]}
        with pytest.raises(ValueError, match=r"suite annotations use reserved tag key\(s\) \['seed'\]"):
            expand_suite({**base, "annotations": {"seed": 1}})
        with pytest.raises(ValueError, match=r"study 'named' annotations use reserved"):
            expand_suite({"studies": [
                {"name": "named", "annotations": {"suite": "x"},
                 "spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME}},
            ]})
        with pytest.raises(ValueError, match="cell tags in study 'study-0' use reserved"):
            expand_suite({"studies": [
                {"spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME,
                          "tags": {"repetition": 5}}},
            ]})

    def test_cell_tags_survive_alongside_provenance(self):
        cells = expand_suite({"studies": [
            {"spec": {"scenario": "geant_small", "scheme": CHEAP_SCHEME,
                      "tags": {"variant": "ablation"}}},
        ]})
        assert cells[0].tags["variant"] == "ablation"
        assert cells[0].tags["study"] == "study-0"

    def test_live_scheme_objects_rejected(self):
        with pytest.raises(ValueError, match="live scheme object"):
            expand_suite({"studies": [
                {"spec": {"scenario": "geant_small", "scheme": object()}},
            ]})

    def test_live_scenario_objects_rejected(self):
        with pytest.raises(ValueError, match="live scenario object"):
            expand_suite({"seeds": [1], "studies": [
                {"spec": {"scenario": object(), "scheme": CHEAP_SCHEME}},
            ]})
        with pytest.raises(ValueError, match="live scenario object"):
            expand_suite({"studies": [
                {"spec": {"scenario": object(), "scheme": CHEAP_SCHEME}},
            ]})

    @pytest.mark.parametrize("descriptor, message", [
        ({"studies": []}, "non-empty list"),
        ({"studies": "nope"}, "non-empty list"),
        ({"bogus": 1, "studies": [{"spec": {}}]}, r"unknown suite descriptor key\(s\) \['bogus'\]"),
        ({"seeds": [1, 1], "studies": [{"spec": {}}]}, "duplicates"),
        ({"seeds": [], "studies": [{"spec": {}}]}, "must not be empty"),
        ({"seeds": [True], "studies": [{"spec": {}}]}, "must be ints"),
        ({"seeds": "012", "studies": [{"spec": {}}]}, "sequence of ints"),
        ({"repetitions": 0, "studies": [{"spec": {}}]}, "positive int"),
        ({"repetitions": True, "studies": [{"spec": {}}]}, "positive int"),
        ({"name": "", "studies": [{"spec": {}}]}, "non-empty string"),
        ({"studies": [{"spec": {}, "bogus": 1}]}, r"unknown study entry key\(s\)"),
    ])
    def test_descriptor_validation(self, descriptor, message):
        with pytest.raises(ValueError, match=message):
            expand_suite(descriptor)

    def test_duplicate_study_names_rejected(self):
        spec = {"scenario": "geant_small", "scheme": CHEAP_SCHEME}
        with pytest.raises(ValueError, match="duplicate study name 'twin'"):
            expand_suite({"studies": [
                {"name": "twin", "spec": spec}, {"name": "twin", "spec": spec},
            ]})

    def test_suite_class_expands_eagerly(self):
        with pytest.raises(ValueError, match="unknown suite descriptor"):
            Suite({"oops": 1, "studies": [{"spec": {}}]})
        suite = Suite(acceptance_descriptor())
        assert len(suite) == 18
        assert suite.name == "acceptance"

    def test_from_json_round_trip(self):
        suite = Suite.from_json(json.dumps(acceptance_descriptor()))
        assert len(suite) == 18


# --------------------------------------------------------------------------- #
# Execution: warehouse wiring + interrupted-resume accounting
# --------------------------------------------------------------------------- #
def small_suite_descriptor() -> dict:
    """1 study x 2 seeds x 2 repetitions over an inline scenario (4 cells)."""
    return {
        "name": "small",
        "seeds": [1, 2],
        "repetitions": 2,
        "studies": [
            {"name": "replay",
             "spec": {"scenario": scenario_config("suite_small"),
                      "scheme": dict(CHEAP_SCHEME), "max_intervals": 3}},
        ],
    }


class TestSuiteExecution:
    def test_run_fills_warehouse_and_repetitions_are_identical(self, tmp_path):
        warehouse = tmp_path / "wh.jsonl"
        suite = Suite(small_suite_descriptor())
        results = suite.run(warehouse=warehouse, engine=EvaluationEngine())
        assert len(results) == 4
        stored = ResultWarehouse(warehouse).results()
        assert len(stored) == 4
        assert [r.tags["repetition"] for r in stored] == [0, 1, 0, 1]
        # The pipeline is deterministic: repetitions are exact repeats.
        by_key = {}
        for record in stored:
            by_key.setdefault(record.tags["seed"], []).append(record.metrics)
        for seed, metrics in by_key.items():
            assert metrics[0] == metrics[1], f"seed {seed} repetitions diverged"
        # Different seeds regenerate traffic, so they genuinely differ.
        assert by_key[1][0] != by_key[2][0]

    def test_interrupted_suite_resumes_without_repeat_work(self, tmp_path):
        descriptor = small_suite_descriptor()
        checkpoint = tmp_path / "suite.ckpt"
        warehouse = tmp_path / "wh.jsonl"

        with count_lp_solves() as full_run:
            reference = Suite(descriptor).run(engine=EvaluationEngine())
        assert len(reference) == 4
        assert full_run.count > 0

        # Simulate a crash after the first two cells (all of seed 1): their
        # records reached the checkpoint, but only one reached the warehouse
        # -- the worst crash window.
        StudyCheckpoint(checkpoint).extend(list(reference)[:2])
        ResultWarehouse(warehouse).append(list(reference)[0])

        suite = Suite(descriptor)
        with count_lp_solves() as tally:
            resumed = suite.resume(checkpoint, warehouse=warehouse, engine=EvaluationEngine())
        # Only the seed-2 half still runs: strictly fewer solves than the
        # full grid, and none at all for seed 1's finished cells (absolute
        # counts are process-history dependent, so assert the bound).
        assert 0 < tally.count < full_run.count
        assert resumed.to_json() == reference.to_json()

        # The warehouse reconciled: every record exactly once, including the
        # one lost in the crash window (append order differs -- the sync
        # pass adds the lost record last -- so compare by provenance).
        def by_provenance(records):
            return {
                (r.tags["seed"], r.tags["repetition"]): r.metrics for r in records
            }

        stored = ResultWarehouse(warehouse).results()
        assert len(stored) == 4
        assert by_provenance(stored) == by_provenance(reference)

        # Resuming the complete run again is entirely idle and appends nothing.
        with count_lp_solves() as idle:
            again = Suite(descriptor).resume(
                checkpoint, warehouse=warehouse, engine=EvaluationEngine()
            )
        assert idle.count == 0
        assert again.to_json() == reference.to_json()
        assert len(ResultWarehouse(warehouse).results()) == 4


# --------------------------------------------------------------------------- #
# CLI subcommands
# --------------------------------------------------------------------------- #
class TestSuiteCli:
    @pytest.fixture()
    def suite_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(small_suite_descriptor()))
        return path

    def test_suite_query_export_end_to_end(self, tmp_path, suite_file, capsys):
        warehouse = tmp_path / "wh.jsonl"
        out_csv = tmp_path / "export" / "table.csv"

        assert study_cli([
            "suite", str(suite_file), "--warehouse", str(warehouse),
            "--checkpoint", str(tmp_path / "run.ckpt"),
        ]) == 0
        shown = capsys.readouterr().out
        assert "Running suite 'small': 4 experiment cell(s)" in shown
        assert f"Warehoused 4 record(s) in {warehouse}" in shown

        assert study_cli(["query", str(warehouse)]) == 0
        shown = capsys.readouterr().out
        assert "4 record(s) match" in shown
        assert "ci95" in shown

        assert study_cli([
            "query", str(warehouse), "--seed", "1",
            "--group-by", "scheme,seed", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["seed"] == 1 and rows[0]["n"] == 2

        assert study_cli(["export", str(warehouse), str(out_csv)]) == 0
        assert f"Wrote 4 row(s) to {out_csv}" in capsys.readouterr().out
        with open(out_csv, newline="") as handle:
            assert len(list(csv.reader(handle))) == 1 + 4

    def test_suite_resume_via_cli(self, tmp_path, suite_file, capsys):
        warehouse = tmp_path / "wh.jsonl"
        checkpoint = tmp_path / "run.ckpt"
        assert study_cli([
            "suite", str(suite_file), "--warehouse", str(warehouse),
            "--checkpoint", str(checkpoint),
        ]) == 0
        capsys.readouterr()
        # Re-running without --resume refuses to clobber the checkpoint.
        with pytest.raises(SystemExit):
            study_cli([
                "suite", str(suite_file), "--warehouse", str(warehouse),
                "--checkpoint", str(checkpoint),
            ])
        capsys.readouterr()
        assert study_cli([
            "suite", str(suite_file), "--warehouse", str(warehouse),
            "--checkpoint", str(checkpoint), "--resume",
        ]) == 0
        assert "Resuming suite 'small'" in capsys.readouterr().out
        assert len(ResultWarehouse(warehouse).results()) == 4

    def test_cli_error_paths_are_clean(self, tmp_path, suite_file, capsys):
        with pytest.raises(SystemExit):
            study_cli(["query", str(tmp_path / "missing.jsonl")])
        assert "no results warehouse" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            study_cli(["export", str(tmp_path / "missing.jsonl"), str(tmp_path / "o.csv")])
        capsys.readouterr()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"bogus": 1, "studies": [{"spec": {}}]}))
        with pytest.raises(SystemExit):
            study_cli(["suite", str(bad)])
        assert "unknown suite descriptor" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            study_cli(["query", str(tmp_path / "w.jsonl"), "--confidence", "1.5"])
        assert "--confidence must be in (0, 1)" in capsys.readouterr().err

    def test_legacy_spec_invocation_still_works(self, tmp_path, capsys):
        spec = {"scenario": scenario_config("legacy"),
                "scheme": dict(CHEAP_SCHEME), "max_intervals": 2}
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec))
        out = tmp_path / "results.json"
        assert study_cli([str(spec_file), "--out", str(out)]) == 0
        assert "Running 1 experiment cell(s)" in capsys.readouterr().out
        assert len(ResultSet.load(out)) == 1
