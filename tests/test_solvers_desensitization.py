"""Unit tests for Desensitization-based TE and the heuristic-F variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.desensitization import (
    DEFAULT_SENSITIVITY_THRESHOLD,
    DesensitizationTE,
    FaultAwareDesensitizationTE,
)
from repro.solvers.heuristic_f import LinearSensitivityTE, PiecewiseSensitivityTE
from repro.te.mlu import max_link_utilization
from repro.te.sensitivity import max_sensitivity_per_pair


class TestDesensitizationTE:
    def test_sensitivity_threshold_enforced(self, mesh4_paths, mesh4_traffic):
        scheme = DesensitizationTE(mesh4_paths, sensitivity_threshold=0.5)
        history = mesh4_traffic.flat_demands()[:12]
        config = scheme.configure(history)
        smax = max_sensitivity_per_pair(mesh4_paths, config, normalized=True)
        assert smax.max() <= 0.5 + 1e-6

    def test_anticipated_matrix_is_window_peak(self, mesh4_paths, mesh4_traffic):
        scheme = DesensitizationTE(mesh4_paths, window=5)
        history = mesh4_traffic.flat_demands()[:20]
        anticipated = scheme.anticipated_demand(history)
        np.testing.assert_allclose(anticipated, history[-5:].max(axis=0))

    def test_hedging_spreads_traffic(self, mesh4_paths, mesh4_traffic):
        scheme = DesensitizationTE(mesh4_paths, sensitivity_threshold=0.5)
        history = mesh4_traffic.flat_demands()[:12]
        config = scheme.configure(history)
        # With a 0.5 cap every pair must use at least two paths.
        for s, d in mesh4_paths.topology.sd_pairs():
            ratios = config.ratios_for(s, d)
            assert (ratios > 1e-6).sum() >= 2

    def test_infeasible_threshold_relaxed_not_failing(self, triangle_paths, mesh4_traffic):
        # The triangle path set has only 2 paths per pair; a 0.1 threshold is
        # infeasible and must be relaxed per pair instead of crashing.
        scheme = DesensitizationTE(triangle_paths, sensitivity_threshold=0.1)
        history = np.ones((12, triangle_paths.num_sd_pairs))
        config = scheme.configure(history)
        sums = triangle_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-6)

    def test_parameter_validation(self, mesh4_paths):
        with pytest.raises(ValueError):
            DesensitizationTE(mesh4_paths, sensitivity_threshold=0.0)
        with pytest.raises(ValueError):
            DesensitizationTE(mesh4_paths, window=0)

    def test_default_threshold_matches_appendix(self):
        assert DEFAULT_SENSITIVITY_THRESHOLD == pytest.approx(2.0 / 3.0)


class TestFaultAwareDesensitizationTE:
    def test_avoids_failed_paths(self, mesh4_paths, mesh4_traffic):
        failed = {(0, 1), (1, 0)}
        scheme = FaultAwareDesensitizationTE(mesh4_paths, failed_edges=failed)
        history = mesh4_traffic.flat_demands()[:12]
        config = scheme.configure(history)
        mask = mesh4_paths.restrict_to_working_paths(failed)
        assert (config.split_ratios[~mask] <= 1e-9).all()

    def test_set_failures_updates(self, mesh4_paths, mesh4_traffic):
        scheme = FaultAwareDesensitizationTE(mesh4_paths)
        scheme.set_failures({(2, 3), (3, 2)})
        history = mesh4_traffic.flat_demands()[:12]
        config = scheme.configure(history)
        mask = mesh4_paths.restrict_to_working_paths({(2, 3), (3, 2)})
        assert (config.split_ratios[~mask] <= 1e-9).all()

    def test_name_distinct_from_base(self, mesh4_paths):
        assert FaultAwareDesensitizationTE(mesh4_paths).name == "FA Des TE"
        assert DesensitizationTE(mesh4_paths).name == "Des TE"


class TestHeuristicF:
    def test_linear_thresholds_monotone_in_variance(self, mesh4_paths, mesh4_traffic):
        scheme = LinearSensitivityTE(mesh4_paths, min_threshold=0.4, max_threshold=0.9)
        scheme.precompute(mesh4_traffic)
        variance = mesh4_traffic.pair_variance()
        thresholds = scheme._thresholds_from_variance(variance)
        order = np.argsort(variance)
        assert (np.diff(thresholds[order]) <= 1e-12).all()
        assert thresholds.max() == pytest.approx(0.9)
        assert thresholds.min() == pytest.approx(0.4)

    def test_piecewise_two_levels(self, mesh4_paths, mesh4_traffic):
        scheme = PiecewiseSensitivityTE(
            mesh4_paths, min_threshold=0.5, max_threshold=0.8, breakpoint=0.5
        )
        scheme.precompute(mesh4_traffic)
        thresholds = scheme._thresholds_from_variance(mesh4_traffic.pair_variance())
        assert set(np.round(thresholds, 6)) <= {0.5, 0.8}

    def test_bursty_pairs_get_stricter_constraints(self, mesh4_paths, mesh4_traffic):
        scheme = LinearSensitivityTE(mesh4_paths, min_threshold=0.34, max_threshold=0.9)
        scheme.precompute(mesh4_traffic)
        history = mesh4_traffic.flat_demands()[:12]
        config = scheme.configure(history)
        smax = max_sensitivity_per_pair(mesh4_paths, config, normalized=True)
        variance = mesh4_traffic.pair_variance()
        most_bursty = int(np.argmax(variance))
        assert smax[most_bursty] <= 0.34 + 1e-6

    def test_relaxed_constraints_do_not_hurt_average(self, mesh4_paths, mesh4_traffic):
        """Appendix C: relaxing caps for stable pairs cannot worsen the anticipated-matrix MLU."""
        strict = DesensitizationTE(mesh4_paths, sensitivity_threshold=0.5)
        relaxed = LinearSensitivityTE(mesh4_paths, min_threshold=0.5, max_threshold=1.0)
        relaxed.precompute(mesh4_traffic)
        flat = mesh4_traffic.flat_demands()
        history = flat[:12]
        target = flat[12]
        strict_mlu = max_link_utilization(mesh4_paths, strict.configure(history), history.max(axis=0))
        relaxed_mlu = max_link_utilization(mesh4_paths, relaxed.configure(history), history.max(axis=0))
        assert relaxed_mlu <= strict_mlu + 1e-9

    def test_parameter_validation(self, mesh4_paths):
        with pytest.raises(ValueError):
            LinearSensitivityTE(mesh4_paths, min_threshold=0.9, max_threshold=0.4)
        with pytest.raises(ValueError):
            PiecewiseSensitivityTE(mesh4_paths, breakpoint=1.5)
        with pytest.raises(ValueError):
            LinearSensitivityTE(mesh4_paths, min_threshold=0.0, max_threshold=0.5)
