"""Unit tests for repro.topology.graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.graph import Edge, Topology


class TestEdge:
    def test_valid_edge(self):
        edge = Edge(0, 1, 10.0)
        assert edge.src == 0
        assert edge.dst == 1
        assert edge.capacity == 10.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Edge(2, 2, 1.0)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            Edge(0, 1, 0.0)
        with pytest.raises(ValueError, match="capacity"):
            Edge(0, 1, -3.0)


class TestTopologyConstruction:
    def test_basic_construction(self):
        topo = Topology(3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)], name="tri")
        assert topo.num_nodes == 3
        assert topo.num_edges == 3
        assert topo.name == "tri"

    def test_accepts_edge_objects(self):
        topo = Topology(2, [Edge(0, 1, 4.0)])
        assert topo.capacity(0, 1) == 4.0

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology(3, [(0, 1, 1.0), (0, 1, 2.0), (1, 2, 1.0)])

    def test_rejects_out_of_range_nodes(self):
        with pytest.raises(ValueError, match="outside"):
            Topology(2, [(0, 5, 1.0)])

    def test_rejects_empty_edge_list(self):
        with pytest.raises(ValueError, match="at least one edge"):
            Topology(3, [])

    def test_rejects_single_node(self):
        with pytest.raises(ValueError, match="two nodes"):
            Topology(1, [(0, 0, 1.0)])

    def test_opposite_directions_are_distinct_edges(self):
        topo = Topology(2, [(0, 1, 1.0), (1, 0, 2.0)])
        assert topo.capacity(0, 1) == 1.0
        assert topo.capacity(1, 0) == 2.0


class TestTopologyAccessors:
    @pytest.fixture()
    def topo(self):
        return Topology(3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0)])

    def test_edge_index_round_trip(self, topo):
        for i, edge in enumerate(topo.edges):
            assert topo.edge_index(edge.src, edge.dst) == i

    def test_edge_index_missing_raises(self, topo):
        with pytest.raises(KeyError):
            topo.edge_index(0, 2)

    def test_has_edge(self, topo):
        assert topo.has_edge(0, 1)
        assert not topo.has_edge(0, 2)

    def test_capacities_vector_matches_edges(self, topo):
        np.testing.assert_allclose(topo.capacities, [1.0, 1.0, 2.0, 2.0])

    def test_capacities_returns_copy(self, topo):
        caps = topo.capacities
        caps[0] = 99.0
        assert topo.capacities[0] == 1.0

    def test_sd_pairs_excludes_diagonal(self, topo):
        pairs = topo.sd_pairs()
        assert len(pairs) == topo.num_sd_pairs == 6
        assert (0, 0) not in pairs
        assert pairs == sorted(pairs)  # row-major order

    def test_total_capacity(self, topo):
        assert topo.total_capacity() == pytest.approx(6.0)

    def test_adjacency_matrix(self, topo):
        adj = topo.adjacency_matrix()
        assert adj[0, 1] == 1.0
        assert adj[1, 2] == 2.0
        assert adj[0, 2] == 0.0


class TestTopologyTransforms:
    @pytest.fixture()
    def topo(self):
        return Topology(3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])

    def test_reversed_copy(self, topo):
        rev = topo.reversed_copy()
        assert rev.has_edge(1, 0)
        assert rev.capacity(1, 0) == 1.0
        assert rev.num_edges == topo.num_edges

    def test_with_scaled_capacities(self, topo):
        scaled = topo.with_scaled_capacities(2.0)
        np.testing.assert_allclose(scaled.capacities, topo.capacities * 2.0)

    def test_scale_factor_must_be_positive(self, topo):
        with pytest.raises(ValueError):
            topo.with_scaled_capacities(0.0)

    def test_without_edges(self, topo):
        smaller = topo.without_edges({(0, 1)})
        assert smaller.num_edges == 2
        assert not smaller.has_edge(0, 1)

    def test_to_networkx_preserves_capacity(self, topo):
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3
        assert graph[1][2]["capacity"] == 2.0

    def test_strongly_connected_detection(self, topo):
        assert topo.is_strongly_connected()
        not_connected = Topology(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert not not_connected.is_strongly_connected()

    def test_equality_and_hash(self, topo):
        same = Topology(3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        different = Topology(3, [(0, 1, 9.0), (1, 2, 2.0), (2, 0, 3.0)])
        assert topo == same
        assert hash(topo) == hash(same)
        assert topo != different
