"""Unit tests for demand-oblivious TE and COPE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths.ksp import build_ksp_path_set
from repro.solvers.cope import CopeTE, solve_cope
from repro.solvers.lp import LPSolveError, omniscient_mlu
from repro.solvers.oblivious import (
    MAX_PRACTICAL_VARIABLES,
    ObliviousTE,
    oblivious_problem_size,
    solve_oblivious_routing,
)
from repro.te.mlu import max_link_utilization
from repro.topology import generators
from repro.traffic.bursty import DataCenterTrafficGenerator


@pytest.fixture(scope="module")
def small_mesh_paths():
    topo = generators.fully_connected(4, capacity=10.0)
    return build_ksp_path_set(topo, k=3)


class TestObliviousRouting:
    def test_oblivious_ratio_at_least_one(self, small_mesh_paths):
        _, ratio = solve_oblivious_routing(small_mesh_paths)
        assert ratio >= 1.0 - 1e-6

    def test_configuration_is_valid(self, small_mesh_paths):
        config, _ = solve_oblivious_routing(small_mesh_paths)
        sums = small_mesh_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-6)

    def test_guarantee_holds_on_random_demands(self, small_mesh_paths, rng):
        """The normalised MLU of the oblivious routing never exceeds its ratio."""
        config, ratio = solve_oblivious_routing(small_mesh_paths)
        for _ in range(5):
            demand = rng.random(small_mesh_paths.num_sd_pairs) * 5.0
            normalized = max_link_utilization(small_mesh_paths, config, demand) / omniscient_mlu(
                small_mesh_paths, demand
            )
            assert normalized <= ratio + 1e-4

    def test_triangle_ratio_matches_hand_analysis(self):
        topo = generators.triangle(capacity=1.0)
        single = build_ksp_path_set(topo, k=1)
        _, ratio_single = solve_oblivious_routing(single)
        # With only the direct path available per pair, the worst case is a
        # demand on a single pair: we load its link fully while the optimum
        # splits the demand over the direct and the 2-hop path, halving the
        # MLU -- so the restricted oblivious ratio is exactly 2.
        assert ratio_single == pytest.approx(2.0, abs=1e-6)
        # Giving the routing the 2-hop detours as well strictly improves it.
        double = build_ksp_path_set(topo, k=2)
        _, ratio_double = solve_oblivious_routing(double)
        assert ratio_double < ratio_single - 0.2

    def test_problem_size_guard(self, small_mesh_paths):
        size = oblivious_problem_size(small_mesh_paths)
        assert size < MAX_PRACTICAL_VARIABLES
        topo = generators.random_regular(40, 6, seed=0)
        big = build_ksp_path_set(topo, k=3)
        assert oblivious_problem_size(big) > oblivious_problem_size(small_mesh_paths)

    def test_scheme_precompute_and_reuse(self, small_mesh_paths, rng):
        scheme = ObliviousTE(small_mesh_paths)
        traffic = DataCenterTrafficGenerator(small_mesh_paths.topology, level="pod", seed=0).generate(20)
        scheme.precompute(traffic)
        history = rng.random((3, small_mesh_paths.num_sd_pairs))
        a = scheme.configure(history)
        b = scheme.configure(history * 10)
        np.testing.assert_allclose(a.split_ratios, b.split_ratios)  # demand-oblivious


class TestCope:
    def test_cope_beats_oblivious_on_predicted_demands(self, small_mesh_paths, rng):
        oblivious_config, ratio = solve_oblivious_routing(small_mesh_paths)
        predicted = rng.random((4, small_mesh_paths.num_sd_pairs)) + 0.5
        cope_config, cope_obj = solve_cope(small_mesh_paths, predicted, penalty_envelope=2 * ratio)
        worst_cope, worst_obl = 0.0, 0.0
        for demand in predicted:
            opt = omniscient_mlu(small_mesh_paths, demand)
            worst_cope = max(worst_cope, max_link_utilization(small_mesh_paths, cope_config, demand) / opt)
            worst_obl = max(worst_obl, max_link_utilization(small_mesh_paths, oblivious_config, demand) / opt)
        assert worst_cope <= worst_obl + 1e-6
        assert cope_obj == pytest.approx(worst_cope, rel=1e-4, abs=1e-6)

    def test_too_tight_penalty_envelope_is_infeasible(self, small_mesh_paths, rng):
        predicted = rng.random((2, small_mesh_paths.num_sd_pairs)) + 0.5
        with pytest.raises(LPSolveError):
            solve_cope(small_mesh_paths, predicted, penalty_envelope=0.5)

    def test_input_validation(self, small_mesh_paths):
        with pytest.raises(ValueError):
            solve_cope(small_mesh_paths, np.ones((2, 3)), penalty_envelope=2.0)
        with pytest.raises(ValueError):
            solve_cope(small_mesh_paths, np.ones((2, small_mesh_paths.num_sd_pairs)), penalty_envelope=0.0)

    def test_cope_scheme_lifecycle(self, small_mesh_paths):
        traffic = DataCenterTrafficGenerator(small_mesh_paths.topology, level="pod", seed=1).generate(30)
        scheme = CopeTE(small_mesh_paths, prediction_set_size=3)
        with pytest.raises(RuntimeError):
            scheme.configure(traffic.flat_demands()[:3])
        scheme.precompute(traffic)
        assert scheme.penalty_envelope is not None
        config = scheme.configure(traffic.flat_demands()[:3])
        sums = small_mesh_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-6)

    def test_cope_parameter_validation(self, small_mesh_paths):
        with pytest.raises(ValueError):
            CopeTE(small_mesh_paths, prediction_set_size=0)
        with pytest.raises(ValueError):
            CopeTE(small_mesh_paths, penalty_envelope_factor=0.5)
