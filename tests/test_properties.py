"""Property-based tests (hypothesis) on the core data structures and invariants.

These tests assert the structural invariants the paper's formulation relies
on: split ratios always form per-pair distributions, MLU is positively
homogeneous and monotone in demand, the LP never does worse than any feasible
configuration, rerouting preserves feasibility, and the autodiff engine agrees
with finite differences on random programs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor
from repro.paths.ksp import build_ksp_path_set
from repro.solvers.lp import solve_mlu_lp
from repro.te.config import TEConfiguration
from repro.te.failures import reroute_around_failures
from repro.te.mlu import link_loads, max_link_utilization
from repro.te.sensitivity import max_sensitivity_per_pair, path_sensitivities
from repro.topology import generators

# Session-wide small path set used by most properties (building it per example
# would dominate the runtime).
_MESH_PATHS = None


def _mesh_paths():
    global _MESH_PATHS
    if _MESH_PATHS is None:
        _MESH_PATHS = build_ksp_path_set(generators.fully_connected(4, capacity=5.0), k=3)
    return _MESH_PATHS


demand_vectors = hnp.arrays(
    dtype=np.float64,
    shape=12,
    elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
)

raw_ratio_vectors = hnp.arrays(
    dtype=np.float64,
    shape=36,
    elements=st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
)


class TestConfigurationProperties:
    @settings(max_examples=50, deadline=None)
    @given(raw=raw_ratio_vectors)
    def test_normalisation_always_yields_distributions(self, raw):
        paths = _mesh_paths()
        config = TEConfiguration(paths, raw, normalize=True)
        sums = paths.sd_to_path @ config.split_ratios
        assert np.allclose(sums, 1.0, atol=1e-9)
        assert (config.split_ratios >= 0).all()

    @settings(max_examples=50, deadline=None)
    @given(raw=raw_ratio_vectors, demand=demand_vectors)
    def test_sensitivity_bounds_mlu_increase_under_single_pair_burst(self, raw, demand):
        """The core claim of Section 4.1: a burst delta on pair sd raises any
        edge utilisation by at most delta * S^max_sd."""
        paths = _mesh_paths()
        config = TEConfiguration(paths, raw, normalize=True)
        base = max_link_utilization(paths, config, demand)
        pair = 3
        delta = 7.0
        bursted = demand.copy()
        bursted[pair] += delta
        after = max_link_utilization(paths, config, bursted)
        smax = max_sensitivity_per_pair(paths, config)[pair]
        assert after <= base + delta * smax + 1e-9


class TestMluProperties:
    @settings(max_examples=50, deadline=None)
    @given(demand=demand_vectors, scale=st.floats(min_value=0.1, max_value=10.0))
    def test_positive_homogeneity(self, demand, scale):
        paths = _mesh_paths()
        config = TEConfiguration.uniform(paths)
        base = max_link_utilization(paths, config, demand)
        scaled = max_link_utilization(paths, config, demand * scale)
        assert scaled == pytest.approx(scale * base, rel=1e-9, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(demand=demand_vectors, extra=demand_vectors)
    def test_monotonicity_in_demand(self, demand, extra):
        paths = _mesh_paths()
        config = TEConfiguration.uniform(paths)
        assert max_link_utilization(paths, config, demand + extra) >= (
            max_link_utilization(paths, config, demand) - 1e-12
        )

    @settings(max_examples=50, deadline=None)
    @given(demand=demand_vectors)
    def test_total_load_conservation(self, demand):
        """Flow placed on edges equals demand weighted by path hop counts."""
        paths = _mesh_paths()
        config = TEConfiguration.shortest_path(paths)
        loads = link_loads(paths, config, demand)
        # Shortest paths in a full mesh are all single-hop.
        assert loads.sum() == pytest.approx(demand.sum(), rel=1e-9, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(demand=demand_vectors, raw=raw_ratio_vectors)
    def test_lp_optimum_is_a_lower_bound(self, demand, raw):
        paths = _mesh_paths()
        _, optimal = solve_mlu_lp(paths, demand)
        candidate = TEConfiguration(paths, raw, normalize=True)
        assert optimal <= max_link_utilization(paths, candidate, demand) + 1e-7


class TestFailureProperties:
    @settings(max_examples=40, deadline=None)
    @given(raw=raw_ratio_vectors, edge_index=st.integers(min_value=0, max_value=11))
    def test_rerouting_preserves_distributions_and_avoids_failed_edge(self, raw, edge_index):
        paths = _mesh_paths()
        config = TEConfiguration(paths, raw, normalize=True)
        edge = paths.topology.edges[edge_index]
        failed = {(edge.src, edge.dst)}
        rerouted = reroute_around_failures(config, failed)
        sums = paths.sd_to_path @ rerouted.split_ratios
        assert np.allclose(sums, 1.0, atol=1e-9)
        mask = paths.restrict_to_working_paths(failed)
        # Pairs that still have a working path put no traffic on failed paths.
        for pair_idx, (s, d) in enumerate(paths.sd_pairs):
            indices = np.array(paths.path_indices_for(s, d))
            if mask[indices].any():
                assert (rerouted.split_ratios[indices[~mask[indices]]] <= 1e-12).all()


class TestSensitivityProperties:
    @settings(max_examples=50, deadline=None)
    @given(raw=raw_ratio_vectors)
    def test_sensitivity_scales_with_ratio(self, raw):
        paths = _mesh_paths()
        config = TEConfiguration(paths, raw, normalize=True)
        sens = path_sensitivities(paths, config)
        # atol covers subnormal ratios (e.g. 5e-324), whose division by the
        # capacity underflows to zero and cannot round-trip exactly.
        np.testing.assert_allclose(
            sens * paths.path_capacities, config.split_ratios, atol=1e-300
        )

    @settings(max_examples=50, deadline=None)
    @given(raw=raw_ratio_vectors)
    def test_max_sensitivity_bounded_by_inverse_capacity(self, raw):
        paths = _mesh_paths()
        config = TEConfiguration(paths, raw, normalize=True)
        smax = max_sensitivity_per_pair(paths, config)
        assert (smax <= 1.0 / paths.path_capacities.min() + 1e-12).all()


class TestAutodiffProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        x=hnp.arrays(
            dtype=np.float64,
            shape=(2, 5),
            elements=st.floats(min_value=0.05, max_value=3.0),
        )
    )
    def test_normalisation_then_sum_gradient_is_zero(self, x):
        """d(sum of per-group normalised values)/dx = 0: the sums are constant 1."""
        seg = np.array([0, 0, 1, 1, 1])
        t = Tensor(x, requires_grad=True)
        sums = t.segment_sum(seg, 2)
        normalised = t / sums.gather_last(seg)
        normalised.sum().backward()
        np.testing.assert_allclose(t.grad, 0.0, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        x=hnp.arrays(
            dtype=np.float64,
            shape=(3, 4),
            # Keep inputs away from ReLU's kink at 0, where finite differences
            # and the (sub)gradient legitimately disagree.
            elements=st.floats(min_value=-2.0, max_value=2.0).filter(lambda v: abs(v) > 1e-2),
        )
    )
    def test_relu_sigmoid_chain_gradient_matches_finite_differences(self, x):
        weights = np.linspace(0.5, 2.0, 4)

        def forward(arr: np.ndarray) -> float:
            t = Tensor(arr)
            return float((t.relu().sigmoid() * weights).sum().item())

        t = Tensor(x, requires_grad=True)
        (t.relu().sigmoid() * weights).sum().backward()
        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                plus, minus = x.copy(), x.copy()
                plus[i, j] += eps
                minus[i, j] -= eps
                numeric[i, j] = (forward(plus) - forward(minus)) / (2 * eps)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    @settings(max_examples=30, deadline=None)
    @given(
        x=hnp.arrays(
            dtype=np.float64,
            shape=6,
            elements=st.floats(min_value=0.1, max_value=5.0),
        ),
        scale=st.floats(min_value=0.5, max_value=2.0),
    )
    def test_gradient_linearity(self, x, scale):
        """grad(scale * f) == scale * grad(f)."""
        a = Tensor(x, requires_grad=True)
        (a * a).sum().backward()
        grad_once = a.grad.copy()
        b = Tensor(x, requires_grad=True)
        ((b * b).sum() * scale).backward()
        np.testing.assert_allclose(b.grad, scale * grad_once, rtol=1e-9)
