"""Unit tests for the traffic generators (gravity, WAN, data center, pFabric)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import generators, zoo
from repro.traffic.bursty import (
    DataCenterTrafficGenerator,
    DataCenterTrafficProfile,
    POD_PROFILE,
    TOR_PROFILE,
)
from repro.traffic.gravity import GravityTrafficGenerator, gravity_matrix, node_weights_from_capacity
from repro.traffic.pfabric import PFabricTrafficGenerator, WEB_SEARCH_FLOW_SIZE_CDF, sample_flow_sizes
from repro.traffic.stats import burstiness_summary
from repro.traffic.wan import GeantLikeGenerator


class TestGravity:
    def test_node_weights_normalised(self, mesh4_topology):
        weights = node_weights_from_capacity(mesh4_topology)
        assert weights.shape == (4,)
        assert weights.sum() == pytest.approx(1.0)

    def test_gravity_matrix_total(self, mesh4_topology):
        tm = gravity_matrix(mesh4_topology, total_demand=100.0)
        assert tm.total() == pytest.approx(100.0)

    def test_gravity_matrix_proportionality(self):
        topo = generators.star(3, capacity=1.0)
        weights = np.array([4.0, 2.0, 1.0, 1.0])
        tm = gravity_matrix(topo, total_demand=1.0, weights=weights)
        # Demand (1, 2) / demand (2, 3) should equal (w1*w2)/(w2*w3) = 2.
        assert tm.demand(1, 2) / tm.demand(2, 3) == pytest.approx(2.0)

    def test_generator_is_stable(self, mesh4_topology):
        seq = GravityTrafficGenerator(mesh4_topology, noise_level=0.02, seed=0).generate(60)
        summary = burstiness_summary(seq, history=10)
        assert summary["p05"] > 0.98  # gravity traffic should be near-identical over time

    def test_generator_deterministic(self, mesh4_topology):
        a = GravityTrafficGenerator(mesh4_topology, seed=3).generate(5).flat_demands()
        b = GravityTrafficGenerator(mesh4_topology, seed=3).generate(5).flat_demands()
        np.testing.assert_allclose(a, b)

    def test_invalid_parameters(self, mesh4_topology):
        with pytest.raises(ValueError):
            GravityTrafficGenerator(mesh4_topology, mean_utilization=0.0)
        with pytest.raises(ValueError):
            GravityTrafficGenerator(mesh4_topology).generate(0)


class TestGeantLikeGenerator:
    def test_shapes_and_positivity(self):
        topo = zoo.geant()
        seq = GeantLikeGenerator(topo, seed=1).generate(50)
        assert len(seq) == 50
        assert seq.num_nodes == 23
        assert (seq.flat_demands() >= 0).all()

    def test_mostly_stable_with_bursts(self):
        topo = zoo.geant()
        seq = GeantLikeGenerator(topo, seed=1, burst_probability=0.05).generate(120)
        summary = burstiness_summary(seq, history=12)
        assert summary["p50"] > 0.9  # most intervals resemble recent history

    def test_diurnal_seasonality_present(self):
        topo = zoo.geant()
        gen = GeantLikeGenerator(topo, seed=2, burst_probability=0.0, noise_level=0.0,
                                 intervals_per_day=24)
        seq = gen.generate(48)
        totals = seq.flat_demands().sum(axis=1)
        # With pure seasonality the total demand varies substantially.
        assert totals.max() / totals.min() > 1.5
        # And the two simulated days follow the same diurnal shape (the small
        # weekly modulation keeps them from being exactly equal).
        correlation = np.corrcoef(totals[:24], totals[24:])[0, 1]
        assert correlation > 0.99


class TestDataCenterGenerator:
    def test_tor_is_burstier_than_pod(self):
        topo = generators.fully_connected(6, capacity=10.0)
        pod = DataCenterTrafficGenerator(topo, level="pod", seed=4).generate(150)
        tor = DataCenterTrafficGenerator(topo, level="tor", seed=4).generate(150)
        pod_summary = burstiness_summary(pod, history=12)
        tor_summary = burstiness_summary(tor, history=12)
        assert tor_summary["p50"] < pod_summary["p50"]

    def test_pair_variance_is_heterogeneous(self, mesh4_topology):
        seq = DataCenterTrafficGenerator(mesh4_topology, level="pod", seed=5).generate(200)
        variance = seq.pair_variance()
        assert variance.max() > 5 * np.median(variance)

    def test_unknown_level_rejected(self, mesh4_topology):
        with pytest.raises(ValueError, match="unknown traffic level"):
            DataCenterTrafficGenerator(mesh4_topology, level="rack")

    def test_custom_profile(self, mesh4_topology):
        quiet = DataCenterTrafficProfile(
            sparsity=0.0,
            base_sigma=0.1,
            ar_coefficient=0.9,
            noise_sigma=0.01,
            burst_rate_range=(0.0, 0.0),
            burst_magnitude=1.0,
            burst_tail_index=2.0,
            bursty_pair_concentration=1.0,
        )
        seq = DataCenterTrafficGenerator(mesh4_topology, profile=quiet, seed=1).generate(80)
        assert burstiness_summary(seq, history=10)["p05"] > 0.95

    def test_default_interval_seconds(self, mesh4_topology):
        pod = DataCenterTrafficGenerator(mesh4_topology, level="pod", seed=1).generate(5)
        tor = DataCenterTrafficGenerator(mesh4_topology, level="tor", seed=1).generate(5)
        assert pod.interval_seconds == 1.0
        assert tor.interval_seconds == 10.0

    def test_deterministic_for_seed(self, mesh4_topology):
        a = DataCenterTrafficGenerator(mesh4_topology, level="tor", seed=9).generate(10)
        b = DataCenterTrafficGenerator(mesh4_topology, level="tor", seed=9).generate(10)
        np.testing.assert_allclose(a.flat_demands(), b.flat_demands())

    def test_profiles_exported(self):
        assert TOR_PROFILE.sparsity > POD_PROFILE.sparsity
        assert TOR_PROFILE.burst_rate_range[1] > POD_PROFILE.burst_rate_range[1]


class TestPFabricGenerator:
    def test_flow_size_distribution_monotone_cdf(self):
        probs = [p for _, p in WEB_SEARCH_FLOW_SIZE_CDF]
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_sample_flow_sizes_range(self, rng):
        sizes = sample_flow_sizes(rng, 1000)
        assert sizes.min() >= 0
        assert sizes.max() <= WEB_SEARCH_FLOW_SIZE_CDF[-1][0]
        # Heavy tail: mean far above median.
        assert sizes.mean() > 2 * np.median(sizes)

    def test_generated_matrices(self):
        topo = generators.leaf_spine_direct_connect(9, capacity=10.0)
        seq = PFabricTrafficGenerator(topo, flows_per_interval=200, seed=0).generate(30)
        assert len(seq) == 30
        flat = seq.flat_demands()
        assert (flat >= 0).all()
        assert flat.sum() > 0

    def test_utilization_rescaling(self):
        topo = generators.leaf_spine_direct_connect(6, capacity=10.0)
        seq = PFabricTrafficGenerator(topo, mean_utilization=0.3, seed=1).generate(40)
        target_total = 0.3 * topo.total_capacity() / 4.0
        assert seq.flat_demands().sum(axis=1).mean() == pytest.approx(target_total, rel=1e-6)

    def test_invalid_rate_rejected(self):
        topo = generators.leaf_spine_direct_connect(6)
        with pytest.raises(ValueError):
            PFabricTrafficGenerator(topo, flows_per_interval=0)

    def test_uniform_source_destination_selection(self):
        topo = generators.leaf_spine_direct_connect(9, capacity=10.0)
        seq = PFabricTrafficGenerator(topo, flows_per_interval=500, mean_utilization=None, seed=2).generate(50)
        totals = seq.as_array().sum(axis=0)
        np.fill_diagonal(totals, np.nan)
        values = totals[~np.isnan(totals)]
        # No pair should dominate: spread within an order of magnitude.
        assert values.max() / max(values.min(), 1e-9) < 10
