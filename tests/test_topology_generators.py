"""Unit tests for repro.topology.generators and repro.topology.zoo."""

from __future__ import annotations

import pytest

from repro.topology import generators, zoo


class TestSmallGenerators:
    def test_triangle_shape(self):
        topo = generators.triangle(capacity=2.0)
        assert topo.num_nodes == 3
        assert topo.num_edges == 6
        assert all(e.capacity == 2.0 for e in topo.edges)

    def test_line_topology(self):
        topo = generators.line(4, capacity=5.0)
        assert topo.num_nodes == 4
        assert topo.num_edges == 6  # 3 links x 2 directions
        assert topo.has_edge(1, 2) and topo.has_edge(2, 1)
        assert not topo.has_edge(0, 2)

    def test_star_topology(self):
        topo = generators.star(5)
        assert topo.num_nodes == 6
        assert topo.num_edges == 10
        assert all(topo.has_edge(0, leaf) for leaf in range(1, 6))

    def test_mismatch_example_capacities(self):
        topo = generators.mismatch_example()
        # Figure 19: the path towards t2 (node 3) has double the capacity.
        assert topo.capacity(0, 3) == 2 * topo.capacity(0, 2)
        assert topo.is_strongly_connected()


class TestFullyConnected:
    def test_counts(self):
        topo = generators.fully_connected(6, capacity=3.0)
        assert topo.num_nodes == 6
        assert topo.num_edges == 30
        assert topo.is_strongly_connected()

    def test_pfabric_matches_table1(self):
        topo = generators.leaf_spine_direct_connect(9)
        assert topo.num_nodes == 9
        assert topo.num_edges == 72  # Table 1


class TestRandomRegular:
    def test_degree_and_connectivity(self):
        topo = generators.random_regular(12, 4, seed=0)
        assert topo.num_nodes == 12
        assert topo.num_edges == 12 * 4  # each undirected edge counted twice
        assert topo.is_strongly_connected()

    def test_deterministic_for_same_seed(self):
        a = generators.random_regular(10, 3, seed=5)
        b = generators.random_regular(10, 3, seed=5)
        assert a == b

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            generators.random_regular(5, 5)
        with pytest.raises(ValueError):
            generators.random_regular(5, 3)  # odd product


class TestWanLike:
    def test_node_and_edge_counts(self):
        topo = generators.wan_like(30, 40, seed=2)
        assert topo.num_nodes == 30
        assert topo.num_edges == 80
        assert topo.is_strongly_connected()

    def test_capacity_levels_respected(self):
        levels = (7.0, 13.0)
        topo = generators.wan_like(20, 25, seed=3, capacity_levels=levels)
        assert {e.capacity for e in topo.edges} <= set(levels)

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError):
            generators.wan_like(20, 10)

    def test_deterministic_for_same_seed(self):
        assert generators.wan_like(25, 30, seed=9) == generators.wan_like(25, 30, seed=9)


class TestZooTopologies:
    def test_geant_matches_table1(self):
        topo = zoo.geant()
        assert topo.num_nodes == 23
        assert topo.num_edges == 74
        assert topo.is_strongly_connected()
        assert len(zoo.GEANT_NODE_NAMES) == 23

    def test_geant_is_symmetric(self):
        topo = zoo.geant()
        for edge in topo.edges:
            assert topo.has_edge(edge.dst, edge.src)
            assert topo.capacity(edge.dst, edge.src) == edge.capacity

    def test_uscarrier_matches_table1(self):
        topo = zoo.uscarrier()
        assert topo.num_nodes == 158
        assert topo.num_edges == 378

    def test_cogentco_matches_table1(self):
        topo = zoo.cogentco()
        assert topo.num_nodes == 197
        assert topo.num_edges == 486
