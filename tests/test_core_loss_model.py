"""Unit tests for the FIGRET loss, network architecture, and trainer plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.loss import TELoss
from repro.core.model import FigretNet
from repro.core.trainer import Trainer, build_windows
from repro.nn import Tensor
from repro.te.config import TEConfiguration
from repro.te.mlu import max_link_utilization
from repro.te.sensitivity import max_sensitivity_per_pair


class TestTrainingConfig:
    def test_defaults_match_appendix_d(self):
        config = TrainingConfig()
        assert config.hidden_sizes == (128, 128, 128, 128, 128)
        assert config.history_len == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(history_len=0)
        with pytest.raises(ValueError):
            TrainingConfig(hidden_sizes=())
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(robustness_weight=-1)
        with pytest.raises(ValueError):
            TrainingConfig(gradient_clip=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(lr_decay=0.0)

    def test_replace(self):
        config = TrainingConfig(epochs=5)
        changed = config.replace(robustness_weight=0.0, epochs=7)
        assert changed.epochs == 7
        assert changed.robustness_weight == 0.0
        assert config.epochs == 5  # original untouched


class TestTELoss:
    def test_split_ratios_sum_to_one(self, mesh4_paths, rng):
        loss = TELoss(mesh4_paths)
        raw = Tensor(rng.random((3, mesh4_paths.num_paths)) + 0.1)
        ratios = loss.split_ratios(raw).numpy()
        sums = (mesh4_paths.sd_to_path @ ratios.T).T
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_mlu_matches_te_module(self, mesh4_paths, rng):
        loss = TELoss(mesh4_paths)
        config = TEConfiguration.uniform(mesh4_paths)
        demand = rng.random((2, mesh4_paths.num_sd_pairs))
        tensor_mlu = loss.mlu(Tensor(config.split_ratios[None, :].repeat(2, axis=0)), demand).numpy()
        expected = max_link_utilization(mesh4_paths, config, demand)
        np.testing.assert_allclose(tensor_mlu, expected)

    def test_sensitivity_term_matches_te_module(self, mesh4_paths, rng):
        variance = rng.random(mesh4_paths.num_sd_pairs)
        loss = TELoss(mesh4_paths, pair_variance=variance, robustness_weight=1.0)
        config = TEConfiguration.uniform(mesh4_paths)
        term = loss.sensitivity_term(Tensor(config.split_ratios[None, :])).numpy()[0]
        smax = max_sensitivity_per_pair(mesh4_paths, config, normalized=True)
        weights = variance / variance.sum()
        assert term == pytest.approx(float(weights @ smax))

    def test_total_loss_components(self, mesh4_paths, rng):
        variance = rng.random(mesh4_paths.num_sd_pairs)
        loss = TELoss(mesh4_paths, pair_variance=variance, robustness_weight=0.5)
        raw = Tensor(rng.random((2, mesh4_paths.num_paths)) + 0.1, requires_grad=True)
        demands = rng.random((2, mesh4_paths.num_sd_pairs))
        total, components = loss(raw, demands)
        assert components["total"] == pytest.approx(
            components["mlu"] + 0.5 * components["sensitivity"]
        )
        total.backward()
        assert raw.grad is not None

    def test_optimal_normalisation(self, mesh4_paths, rng):
        loss = TELoss(mesh4_paths)
        raw = Tensor(rng.random((2, mesh4_paths.num_paths)) + 0.1)
        demands = rng.random((2, mesh4_paths.num_sd_pairs))
        _, plain = loss(raw, demands)
        _, normalized = loss(raw, demands, optimal_mlu=np.full(2, 2.0))
        assert normalized["mlu"] == pytest.approx(plain["mlu"] / 2.0)

    def test_robustness_disabled_without_variance(self, mesh4_paths, rng):
        loss = TELoss(mesh4_paths, pair_variance=None, robustness_weight=1.0)
        raw = Tensor(rng.random((1, mesh4_paths.num_paths)) + 0.1)
        _, components = loss(raw, rng.random((1, mesh4_paths.num_sd_pairs)))
        assert components["sensitivity"] == 0.0
        with pytest.raises(RuntimeError):
            loss.sensitivity_term(raw)

    def test_variance_shape_validation(self, mesh4_paths):
        with pytest.raises(ValueError):
            TELoss(mesh4_paths, pair_variance=np.ones(3))

    def test_higher_sensitivity_increases_loss(self, mesh4_paths, rng):
        variance = np.ones(mesh4_paths.num_sd_pairs)
        loss = TELoss(mesh4_paths, pair_variance=variance, robustness_weight=1.0)
        concentrated = TEConfiguration.shortest_path(mesh4_paths).split_ratios[None, :]
        hedged = TEConfiguration.uniform(mesh4_paths).split_ratios[None, :]
        assert (
            loss.sensitivity_term(Tensor(concentrated)).item()
            > loss.sensitivity_term(Tensor(hedged)).item()
        )


class TestFigretNet:
    def test_output_shape_and_range(self, mesh4_paths, rng):
        net = FigretNet(mesh4_paths, history_len=4, hidden_sizes=(16, 16), seed=0)
        x = Tensor(rng.random((3, net.input_dim)))
        out = net(x)
        assert out.shape == (3, mesh4_paths.num_paths)
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_split_ratios_helper(self, mesh4_paths, rng):
        net = FigretNet(mesh4_paths, history_len=4, hidden_sizes=(16,), seed=0)
        window = rng.random((4, mesh4_paths.num_sd_pairs))
        ratios = net.split_ratios(window)
        sums = mesh4_paths.sd_to_path @ ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_split_ratios_wrong_size(self, mesh4_paths, rng):
        net = FigretNet(mesh4_paths, history_len=4, hidden_sizes=(16,), seed=0)
        with pytest.raises(ValueError):
            net.split_ratios(rng.random((3, mesh4_paths.num_sd_pairs)))

    def test_deterministic_initialisation(self, mesh4_paths):
        a = FigretNet(mesh4_paths, history_len=2, hidden_sizes=(8,), seed=5)
        b = FigretNet(mesh4_paths, history_len=2, hidden_sizes=(8,), seed=5)
        np.testing.assert_allclose(a.parameters()[0].data, b.parameters()[0].data)

    def test_architecture_depth(self, mesh4_paths):
        net = FigretNet(mesh4_paths, history_len=2, hidden_sizes=(128,) * 5, seed=0)
        # Five hidden Linear layers + the output Linear layer = 12 parameter tensors.
        assert len(net.parameters()) == 12


class TestTrainer:
    def test_build_windows_shapes(self, mesh4_traffic):
        inputs, targets = build_windows(mesh4_traffic, history_len=6)
        assert inputs.shape == (len(mesh4_traffic) - 6, 6 * 12)
        assert targets.shape == (len(mesh4_traffic) - 6, 12)

    def test_build_windows_too_short(self, mesh4_traffic):
        with pytest.raises(ValueError):
            build_windows(mesh4_traffic[:3], history_len=10)

    def test_training_reduces_loss(self, mesh4_paths, mesh4_traffic):
        config = TrainingConfig(
            epochs=6, history_len=4, hidden_sizes=(32, 32), normalize_by_optimal=False,
            robustness_weight=0.0, seed=0,
        )
        trainer = Trainer(mesh4_paths, config)
        history = trainer.fit(mesh4_traffic)
        assert len(history.epoch_losses) == 6
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_inference_after_training(self, mesh4_paths, mesh4_traffic):
        config = TrainingConfig(epochs=2, history_len=4, hidden_sizes=(16,), seed=0,
                                normalize_by_optimal=False)
        trainer = Trainer(mesh4_paths, config)
        trainer.fit(mesh4_traffic)
        window = mesh4_traffic.flat_demands()[:4]
        ratios = trainer.split_ratios(window)
        sums = mesh4_paths.sd_to_path @ ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_robustness_weight_recorded_in_history(self, mesh4_paths, mesh4_traffic):
        variance = mesh4_traffic.pair_variance()
        config = TrainingConfig(epochs=2, history_len=4, hidden_sizes=(16,), seed=0,
                                robustness_weight=0.5, normalize_by_optimal=False)
        trainer = Trainer(mesh4_paths, config, pair_variance=variance)
        history = trainer.fit(mesh4_traffic)
        assert all(s > 0 for s in history.epoch_sensitivity_losses)
