"""Integration tests: end-to-end behaviour on miniature versions of the paper's experiments.

These tests train real (small) models and run the full evaluation pipeline,
asserting the qualitative relationships the paper reports rather than exact
numbers: who wins, and in which regime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import datasets
from repro.core import Dote, Figret, TealLike, TrainingConfig
from repro.evaluation import compare_schemes, evaluate_scheme, failure_experiment
from repro.solvers import (
    DesensitizationTE,
    FaultAwareDesensitizationTE,
    OmniscientTE,
    PredictionBasedTE,
)
from repro.te.failures import reroute_around_failures, sample_failed_links
from repro.te.mlu import max_link_utilization


FAST = TrainingConfig(
    epochs=12,
    history_len=6,
    hidden_sizes=(64, 64),
    robustness_weight=0.2,
    normalize_by_optimal=True,
    seed=0,
)


@pytest.fixture(scope="module")
def pod_scenario():
    return datasets.load("meta_pod_db_small", seed=5, num_intervals=140)


@pytest.fixture(scope="module")
def pod_results(pod_scenario):
    train, test = pod_scenario.split()
    schemes = [
        Figret(pod_scenario.paths, FAST),
        Dote(pod_scenario.paths, FAST),
        DesensitizationTE(pod_scenario.paths),
        PredictionBasedTE(pod_scenario.paths),
    ]
    return compare_schemes(schemes, train, test, FAST.history_len)


class TestMainComparison:
    def test_all_schemes_normalised_mlu_at_least_one(self, pod_results):
        for result in pod_results.values():
            assert (result.normalized_mlus >= 1.0 - 1e-6).all()

    def test_learned_schemes_beat_fixed_hedging_on_average(self, pod_results):
        assert pod_results["FIGRET"].statistics.mean < pod_results["Des TE"].statistics.mean
        assert pod_results["DOTE"].statistics.mean < pod_results["Des TE"].statistics.mean

    def test_figret_close_to_or_better_than_dote(self, pod_results):
        # On moderately bursty traffic FIGRET should not lose more than a few
        # percent of average MLU versus DOTE (the paper reports parity or wins).
        assert pod_results["FIGRET"].statistics.mean <= pod_results["DOTE"].statistics.mean * 1.05

    def test_figret_tail_no_worse_than_prediction_te(self, pod_results):
        assert (
            pod_results["FIGRET"].statistics.p99
            <= pod_results["Pred TE (last)"].statistics.p99 + 1e-6
        )

    def test_omniscient_is_exactly_one(self, pod_scenario):
        _, test = pod_scenario.split()
        result = evaluate_scheme(
            OmniscientTE(pod_scenario.paths), test[:12], history_len=4, oracle_demand=True
        )
        np.testing.assert_allclose(result.normalized_mlus, 1.0, atol=1e-5)


class TestTealLikeBaseline:
    def test_teal_like_trains_and_cannot_reach_the_optimum(self, pod_scenario):
        train, test = pod_scenario.split()
        teal = TealLike(pod_scenario.paths, FAST)
        dote = Dote(pod_scenario.paths, FAST)
        results = compare_schemes([teal, dote], train, test, FAST.history_len)
        teal_stats = results["TEAL-like"].statistics
        # TEAL-like optimises for the stale previous demand, so on bursty
        # traffic it stays measurably away from the omniscient optimum and in
        # the same ballpark as the other learned schemes.
        assert teal_stats.mean > 1.02
        assert teal_stats.mean < 3.0
        assert (results["TEAL-like"].normalized_mlus >= 1.0 - 1e-6).all()


class TestFailureHandling:
    def test_rerouted_figret_stays_feasible_and_reasonable(self, pod_scenario):
        train, test = pod_scenario.split()
        figret = Figret(pod_scenario.paths, FAST)
        figret.precompute(train)
        flat = test.flat_demands()
        history = flat[: FAST.history_len]
        config = figret.configure(history)
        rng = np.random.default_rng(0)
        failed = sample_failed_links(pod_scenario.topology, 1, rng)
        rerouted = reroute_around_failures(config, failed)
        mlu = max_link_utilization(pod_scenario.paths, rerouted, flat[FAST.history_len])
        assert np.isfinite(mlu) and mlu > 0

    def test_failure_experiment_runs_all_schemes(self, pod_scenario):
        train, test = pod_scenario.split()
        des = DesensitizationTE(pod_scenario.paths)
        fa_des = FaultAwareDesensitizationTE(pod_scenario.paths)
        results = failure_experiment(
            [des, fa_des], test[:10], history_len=4, num_failures=1, num_trials=2, seed=1
        )
        assert {name: len(series) for name, series in results.items()} == {
            "Des TE": 12,
            "FA Des TE": 12,
        }


class TestStableTrafficRegime:
    def test_prediction_te_near_optimal_on_gravity_traffic(self):
        scenario = datasets.load("uscarrier_small", seed=1, num_intervals=40)
        train, test = scenario.split()
        scheme = PredictionBasedTE(scenario.paths)
        result = evaluate_scheme(scheme, test, history_len=4)
        # Figure 5(d): with stable gravity traffic every scheme is near 1.
        assert result.statistics.mean < 1.1
