"""Shared fixtures for the FIGRET reproduction test suite.

Fixtures deliberately use tiny topologies and short traces so the whole suite
runs quickly; the benchmark harness exercises the realistic sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths.ksp import build_ksp_path_set
from repro.topology import generators
from repro.traffic.bursty import DataCenterTrafficGenerator
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence


@pytest.fixture(scope="session")
def triangle_topology():
    """The Figure 3 triangle (3 nodes, capacity 2 everywhere)."""
    return generators.triangle(capacity=2.0)


@pytest.fixture(scope="session")
def triangle_paths(triangle_topology):
    """Two candidate paths per pair on the triangle (direct + detour)."""
    return build_ksp_path_set(triangle_topology, k=2)


@pytest.fixture(scope="session")
def mesh4_topology():
    """A 4-node full mesh (PoD-level style), capacity 10."""
    return generators.fully_connected(4, capacity=10.0)


@pytest.fixture(scope="session")
def mesh4_paths(mesh4_topology):
    """Three candidate paths per pair on the 4-node mesh."""
    return build_ksp_path_set(mesh4_topology, k=3)


@pytest.fixture(scope="session")
def line_topology():
    """A 4-node line topology (unique paths, no path diversity)."""
    return generators.line(4, capacity=5.0)


@pytest.fixture(scope="session")
def mesh4_traffic(mesh4_topology):
    """A short moderately bursty trace on the 4-node mesh."""
    return DataCenterTrafficGenerator(mesh4_topology, level="pod", seed=3).generate(80)


@pytest.fixture(scope="session")
def tor_scenario_small():
    """A small ToR-like scenario: 8-node random regular graph + bursty traffic."""
    topology = generators.random_regular(8, 3, capacity=10.0, seed=1)
    paths = build_ksp_path_set(topology, k=3)
    traffic = DataCenterTrafficGenerator(topology, level="tor", seed=2).generate(90)
    return topology, paths, traffic


@pytest.fixture()
def rng():
    """A seeded NumPy random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def simple_sequence():
    """A deterministic 3-node traffic sequence with known statistics."""
    matrices = []
    for t in range(10):
        m = np.zeros((3, 3))
        m[0, 1] = 1.0 + t          # steadily growing
        m[0, 2] = 5.0              # constant
        m[1, 2] = 2.0 if t % 2 == 0 else 4.0  # oscillating
        m[2, 0] = 0.5
        matrices.append(TrafficMatrix(m))
    return TrafficMatrixSequence(matrices, interval_seconds=60.0, name="simple")
