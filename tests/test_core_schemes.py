"""Unit tests for the FIGRET, DOTE and TEAL-like schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Dote, Figret, TealLike, TrainingConfig
from repro.te.sensitivity import max_sensitivity_per_pair

FAST = TrainingConfig(
    epochs=4,
    history_len=4,
    hidden_sizes=(32, 32),
    normalize_by_optimal=False,
    robustness_weight=0.2,
    seed=0,
)


class TestFigret:
    def test_configure_before_precompute_raises(self, mesh4_paths):
        with pytest.raises(RuntimeError):
            Figret(mesh4_paths, FAST).configure(np.ones((4, 12)))

    def test_valid_configuration_after_training(self, mesh4_paths, mesh4_traffic):
        scheme = Figret(mesh4_paths, FAST)
        scheme.precompute(mesh4_traffic)
        history = mesh4_traffic.flat_demands()[-4:]
        config = scheme.configure(history)
        sums = mesh4_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_short_history_is_padded(self, mesh4_paths, mesh4_traffic):
        scheme = Figret(mesh4_paths, FAST)
        scheme.precompute(mesh4_traffic)
        config = scheme.configure(mesh4_traffic.flat_demands()[:2])
        sums = mesh4_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_pair_variance_recorded(self, mesh4_paths, mesh4_traffic):
        scheme = Figret(mesh4_paths, FAST)
        scheme.precompute(mesh4_traffic)
        np.testing.assert_allclose(scheme.pair_variance, mesh4_traffic.pair_variance())

    def test_training_history_exposed(self, mesh4_paths, mesh4_traffic):
        scheme = Figret(mesh4_paths, FAST)
        scheme.precompute(mesh4_traffic)
        assert len(scheme.training_history.epoch_losses) == FAST.epochs


class TestDote:
    def test_robustness_weight_forced_to_zero(self, mesh4_paths):
        scheme = Dote(mesh4_paths, FAST)
        assert scheme.config.robustness_weight == 0.0
        assert scheme.config.history_len == FAST.history_len

    def test_trains_and_configures(self, mesh4_paths, mesh4_traffic):
        scheme = Dote(mesh4_paths, FAST)
        scheme.precompute(mesh4_traffic)
        config = scheme.configure(mesh4_traffic.flat_demands()[-4:])
        sums = mesh4_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_configure_before_precompute_raises(self, mesh4_paths):
        with pytest.raises(RuntimeError):
            Dote(mesh4_paths, FAST).configure(np.ones((4, 12)))


class TestTealLike:
    def test_history_len_is_one(self, mesh4_paths):
        scheme = TealLike(mesh4_paths, FAST)
        assert scheme.config.history_len == 1

    def test_trains_and_configures(self, mesh4_paths, mesh4_traffic):
        scheme = TealLike(mesh4_paths, FAST)
        scheme.precompute(mesh4_traffic)
        config = scheme.configure(mesh4_traffic.flat_demands()[-3:])
        sums = mesh4_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_configure_before_precompute_raises(self, mesh4_paths):
        with pytest.raises(RuntimeError):
            TealLike(mesh4_paths, FAST).configure(np.ones((1, 12)))


class TestFigretVersusDote:
    def test_figret_hedges_bursty_pairs_more_than_stable_ones(self, tor_scenario_small):
        """The qualitative behaviour behind Figure 8: sensitivity tracks variance."""
        _, paths, traffic = tor_scenario_small
        config = TrainingConfig(
            epochs=10, history_len=6, hidden_sizes=(64, 64), robustness_weight=0.5,
            normalize_by_optimal=False, seed=1,
        )
        scheme = Figret(paths, config)
        train, test = traffic.split(0.8)
        scheme.precompute(train)
        history = test.flat_demands()[:6]
        te_config = scheme.configure(history)
        sens = max_sensitivity_per_pair(paths, te_config, normalized=True)
        variance = train.pair_variance()
        bursty = variance >= np.percentile(variance, 80)
        stable = variance <= np.percentile(variance, 20)
        assert sens[bursty].mean() < sens[stable].mean()

    def test_figret_sensitivity_below_dote_on_bursty_pairs(self, tor_scenario_small):
        _, paths, traffic = tor_scenario_small
        config = TrainingConfig(
            epochs=10, history_len=6, hidden_sizes=(64, 64), robustness_weight=0.5,
            normalize_by_optimal=False, seed=1,
        )
        train, test = traffic.split(0.8)
        figret = Figret(paths, config)
        dote = Dote(paths, config)
        figret.precompute(train)
        dote.precompute(train)
        history = test.flat_demands()[:6]
        variance = train.pair_variance()
        bursty = variance >= np.percentile(variance, 80)
        fig_sens = max_sensitivity_per_pair(paths, figret.configure(history), normalized=True)
        dote_sens = max_sensitivity_per_pair(paths, dote.configure(history), normalized=True)
        assert fig_sens[bursty].mean() <= dote_sens[bursty].mean() + 0.05
