"""Unit tests for the scenario registry."""

from __future__ import annotations

import pytest

from repro import datasets
from repro.traffic.stats import burstiness_summary


class TestRegistry:
    def test_available_scenarios_contains_paper_set(self):
        names = datasets.available_scenarios()
        for required in (
            "geant",
            "uscarrier",
            "cogentco",
            "pfabric",
            "meta_pod_db",
            "meta_pod_web",
            "meta_tor_db",
            "meta_tor_web",
        ):
            assert required in names
            assert f"{required}_small" in names or required in ("geant",)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            datasets.load("nonexistent")

    def test_small_scenario_loads_quickly_and_consistently(self):
        scenario = datasets.load("meta_pod_db_small", seed=1, num_intervals=50)
        assert scenario.topology.num_nodes == 4
        assert scenario.paths.num_sd_pairs == 12
        assert len(scenario.traffic) == 50
        again = datasets.load("meta_pod_db_small", seed=1, num_intervals=50)
        assert (
            scenario.traffic.flat_demands() == again.traffic.flat_demands()
        ).all()

    def test_split_respects_train_fraction(self):
        scenario = datasets.load("pfabric_small", seed=2, num_intervals=40)
        train, test = scenario.split()
        assert len(train) == 30
        assert len(test) == 10

    def test_pod_web_has_eight_pods(self):
        scenario = datasets.load("meta_pod_web_small", seed=0, num_intervals=20)
        assert scenario.topology.num_nodes == 8
        assert scenario.topology.num_edges == 56  # Table 1

    def test_tor_small_uses_random_regular_graph(self):
        scenario = datasets.load("meta_tor_db_small", seed=0, num_intervals=30)
        degrees = {}
        for edge in scenario.topology.edges:
            degrees[edge.src] = degrees.get(edge.src, 0) + 1
        assert len(set(degrees.values())) == 1  # regular graph

    def test_tor_traffic_burstier_than_pod_traffic(self):
        pod = datasets.load("meta_pod_db_small", seed=3, num_intervals=120)
        tor = datasets.load("meta_tor_db_small", seed=3, num_intervals=120)
        pod_p50 = burstiness_summary(pod.traffic, history=12)["p50"]
        tor_p50 = burstiness_summary(tor.traffic, history=12)["p50"]
        assert tor_p50 < pod_p50

    def test_geant_small_is_mostly_stable(self):
        scenario = datasets.load("geant_small", seed=4, num_intervals=100)
        summary = burstiness_summary(scenario.traffic, history=12)
        assert summary["p50"] > 0.9

    def test_wan_gravity_scenarios_use_synthetic_wan(self):
        scenario = datasets.load("uscarrier_small", seed=0, num_intervals=20)
        assert scenario.topology.num_nodes == 40
        assert "gravity" in scenario.traffic.name

    def test_every_small_scenario_is_loadable(self):
        for name in datasets.available_scenarios():
            if not name.endswith("_small") and name != "geant_small":
                continue
            scenario = datasets.load(name, seed=0, num_intervals=15)
            assert len(scenario.traffic) == 15
            assert scenario.paths.num_sd_pairs == scenario.topology.num_sd_pairs
