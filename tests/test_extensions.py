"""Tests for the deployment-oriented extensions: WCMP quantization and retraining triggers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.retraining import (
    PerformanceDegradationDetector,
    RetrainingPolicy,
    TrafficDriftDetector,
)
from repro.te.config import TEConfiguration
from repro.te.mlu import max_link_utilization
from repro.te.quantize import quantization_error, quantize_configuration
from repro.traffic.bursty import DataCenterTrafficGenerator
from repro.traffic.matrix import TrafficMatrixSequence


class TestQuantization:
    def test_quantized_ratios_are_multiples_and_sum_to_one(self, mesh4_paths, rng):
        config = TEConfiguration(mesh4_paths, rng.random(mesh4_paths.num_paths), normalize=True)
        quantized = quantize_configuration(config, total_weight=16)
        sums = mesh4_paths.sd_to_path @ quantized.split_ratios
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)
        scaled = quantized.split_ratios * 16
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_error_shrinks_with_budget(self, mesh4_paths, rng):
        config = TEConfiguration(mesh4_paths, rng.random(mesh4_paths.num_paths), normalize=True)
        coarse = quantization_error(config, total_weight=4)
        fine = quantization_error(config, total_weight=256)
        assert fine <= coarse
        assert fine <= 1.0 / 256 + 1e-12

    def test_error_bounded_by_one_unit(self, mesh4_paths, rng):
        config = TEConfiguration(mesh4_paths, rng.random(mesh4_paths.num_paths), normalize=True)
        assert quantization_error(config, total_weight=16) <= 1.0 / 16 + 1e-9

    def test_exact_ratios_are_preserved(self, mesh4_paths):
        config = TEConfiguration.uniform(mesh4_paths)  # thirds are not exact in /16
        quantized = quantize_configuration(config, total_weight=3)
        np.testing.assert_allclose(quantized.split_ratios, config.split_ratios)

    def test_mlu_impact_is_small_for_fine_budgets(self, mesh4_paths, rng):
        config = TEConfiguration(mesh4_paths, rng.random(mesh4_paths.num_paths), normalize=True)
        demand = rng.random(mesh4_paths.num_sd_pairs)
        base = max_link_utilization(mesh4_paths, config, demand)
        quantized = quantize_configuration(config, total_weight=128)
        after = max_link_utilization(mesh4_paths, quantized, demand)
        assert abs(after - base) / base < 0.1

    def test_invalid_budget_rejected(self, mesh4_paths):
        config = TEConfiguration.uniform(mesh4_paths)
        with pytest.raises(ValueError):
            quantize_configuration(config, total_weight=0)


class TestTrafficDriftDetector:
    def _traffic(self, topology, seed, burst_rate_scale=1.0):
        generator = DataCenterTrafficGenerator(topology, level="pod", seed=seed)
        return generator.generate(60)

    def test_no_drift_on_same_distribution(self, mesh4_topology):
        train = self._traffic(mesh4_topology, seed=1)
        recent = self._traffic(mesh4_topology, seed=1)
        detector = TrafficDriftDetector(train)
        assert detector.score(recent) < 0.05
        assert not detector.has_drifted(recent)

    def test_detects_shifted_traffic(self, mesh4_topology):
        train = self._traffic(mesh4_topology, seed=1)
        detector = TrafficDriftDetector(train, drift_threshold=0.2)
        # Concentrate all traffic on one pair: a drastic pattern change.
        shifted = np.zeros((30, 4, 4))
        shifted[:, 0, 1] = np.linspace(10, 50, 30)
        recent = TrafficMatrixSequence(shifted)
        assert detector.score(recent) > 0.2
        assert detector.has_drifted(recent)

    def test_shape_mismatch_rejected(self, mesh4_topology):
        train = self._traffic(mesh4_topology, seed=1)
        detector = TrafficDriftDetector(train)
        with pytest.raises(ValueError):
            detector.score(TrafficMatrixSequence(np.ones((5, 3, 3))))

    def test_threshold_validation(self, mesh4_topology):
        train = self._traffic(mesh4_topology, seed=1)
        with pytest.raises(ValueError):
            TrafficDriftDetector(train, drift_threshold=0.0)


class TestPerformanceDegradationDetector:
    def test_not_degraded_near_baseline(self):
        detector = PerformanceDegradationDetector(baseline=1.2, degradation_threshold=0.1)
        for _ in range(20):
            detector.observe(1.21)
        assert not detector.is_degraded()
        assert detector.degradation < 0.05

    def test_degradation_detected(self):
        detector = PerformanceDegradationDetector(baseline=1.2, degradation_threshold=0.1, window=10)
        for _ in range(10):
            detector.observe(1.5)
        assert detector.is_degraded()
        assert detector.degradation == pytest.approx(0.25)

    def test_rolling_window_forgets_old_spikes(self):
        detector = PerformanceDegradationDetector(baseline=1.0, degradation_threshold=0.2, window=5)
        for _ in range(5):
            detector.observe(2.0)
        assert detector.is_degraded()
        for _ in range(5):
            detector.observe(1.0)
        assert not detector.is_degraded()

    def test_validation(self):
        with pytest.raises(ValueError):
            PerformanceDegradationDetector(baseline=0.0)
        detector = PerformanceDegradationDetector(baseline=1.0)
        with pytest.raises(ValueError):
            detector.observe(0.0)
        assert detector.degradation == 0.0


class TestRetrainingPolicy:
    def test_requires_at_least_one_trigger(self):
        with pytest.raises(ValueError):
            RetrainingPolicy()

    def test_periodic_fallback(self):
        policy = RetrainingPolicy(period=3)
        assert not policy.check().retrain
        assert not policy.check().retrain
        decision = policy.check()
        assert decision.retrain and decision.reason == "periodic"
        policy.notify_retrained()
        assert not policy.check().retrain

    def test_degradation_takes_priority(self, mesh4_topology):
        train = DataCenterTrafficGenerator(mesh4_topology, level="pod", seed=2).generate(40)
        degradation = PerformanceDegradationDetector(baseline=1.0, degradation_threshold=0.1, window=3)
        for _ in range(3):
            degradation.observe(1.5)
        policy = RetrainingPolicy(
            drift_detector=TrafficDriftDetector(train),
            degradation_detector=degradation,
            period=100,
        )
        decision = policy.check(train[:10])
        assert decision.retrain
        assert decision.reason == "performance degradation"

    def test_drift_trigger(self, mesh4_topology):
        train = DataCenterTrafficGenerator(mesh4_topology, level="pod", seed=2).generate(40)
        policy = RetrainingPolicy(drift_detector=TrafficDriftDetector(train, drift_threshold=0.2))
        shifted = np.zeros((20, 4, 4))
        shifted[:, 2, 3] = 100.0
        decision = policy.check(TrafficMatrixSequence(shifted))
        assert decision.retrain and decision.reason == "traffic drift"
        # A window drawn from the training data itself must not trigger.
        calm = policy.check(train)
        assert not calm.retrain and calm.reason == "none"
