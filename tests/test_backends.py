"""Backend subsystem tests: selection, dtype plumbing, and equivalence.

Three layers:

* **Selection** -- the ``REPRO_BACKEND`` environment variable / explicit
  arguments / :func:`use_backend` overrides, the unknown-name error, and the
  warn-once numpy fallback for missing optional backends.
* **Ops** -- the generic functional op set of every locally available
  backend pinned against numpy reference results.
* **Equivalence** -- the three backend-threaded hot-path functions
  (``split_ratios_batch``, ``max_link_utilization``,
  ``reroute_ratios_around_failures``) and full engine replays, parameterized
  over every locally available backend with that backend's declared
  tolerance.  The default numpy backend is additionally pinned
  *bit-identically* (``assert_array_equal``) to the engine's output.

The suites run under any ``REPRO_BACKEND`` value (the CI backend matrix
exports one); every test pins the backends it compares explicitly.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import (
    available_backends,
    get_backend,
    importable_backends,
    resolve_backend,
    use_backend,
)
from repro.core import Dote, TrainingConfig
from repro.evaluation.engine import EvaluationEngine
from repro.solvers import PredictionBasedTE
from repro.te.config import TEConfiguration
from repro.te.failures import reroute_ratios_around_failures
from repro.te.mlu import max_link_utilization
from repro.traffic.windows import build_history_windows

HISTORY = 4


LOCAL_BACKENDS = importable_backends()
MISSING_OPTIONAL = [
    name
    for name in ("torch", "cupy")
    if importlib.util.find_spec(name) is None
]


@pytest.fixture(scope="module")
def trained_dote(request):
    """A tiny trained DOTE (deterministic function of its window)."""
    mesh4_paths = request.getfixturevalue("mesh4_paths")
    mesh4_traffic = request.getfixturevalue("mesh4_traffic")
    train, _ = mesh4_traffic.split(0.6)
    scheme = Dote(
        mesh4_paths,
        TrainingConfig(
            epochs=2, history_len=HISTORY, hidden_sizes=(16, 16), normalize_by_optimal=False
        ),
    )
    scheme.precompute(train)
    return scheme


class TestBackendSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(backend_mod.BACKEND_ENV_VAR, raising=False)
        assert get_backend().name == "numpy"
        assert get_backend().native_numpy

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV_VAR, "python")
        assert backend_mod.active_backend().name == "python"
        # Explicit names beat the environment.
        assert get_backend("numpy32").name == "numpy32"

    def test_unknown_name_raises_from_env(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV_VAR, "no-such-backend")
        with pytest.raises(ValueError, match="unknown array backend 'no-such-backend'"):
            backend_mod.active_backend()

    def test_unknown_name_raises_with_known_choices(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("tensorflow")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message

    def test_auto_resolves_to_an_importable_backend(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV_VAR, "auto")
        assert backend_mod.active_backend().name in available_backends()

    @pytest.mark.skipif(
        not MISSING_OPTIONAL, reason="every optional backend is installed here"
    )
    def test_missing_optional_falls_back_with_single_warning(self, monkeypatch):
        name = MISSING_OPTIONAL[0]
        monkeypatch.setattr(backend_mod, "_FALLBACK_WARNED", set())
        monkeypatch.delitem(backend_mod._INSTANCES, name, raising=False)
        with pytest.warns(RuntimeWarning, match=f"{name}.*falling back to numpy"):
            assert get_backend(name).name == "numpy"
        # The second resolution is silent (one warning per process) and hits
        # the instance cache instead of re-attempting the failed import --
        # REPRO_BACKEND set to a missing backend resolves on every hot-path
        # call, so the miss must not pay a module scan each time.
        assert backend_mod._INSTANCES[name].name == "numpy"
        with warnings_none():
            assert get_backend(name) is backend_mod._INSTANCES[name]

    def test_use_backend_overrides_and_restores(self, monkeypatch):
        monkeypatch.delenv(backend_mod.BACKEND_ENV_VAR, raising=False)
        assert backend_mod.active_backend().name == "numpy"
        with use_backend("python") as active:
            assert active.name == "python"
            assert backend_mod.active_backend().name == "python"
            with use_backend("numpy32"):
                assert backend_mod.active_backend().name == "numpy32"
            assert backend_mod.active_backend().name == "python"
        assert backend_mod.active_backend().name == "numpy"

    def test_use_backend_none_is_a_no_op(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV_VAR, "python")
        with use_backend(None) as active:
            assert active.name == "python"

    def test_resolve_backend_passthrough(self):
        instance = get_backend("numpy32")
        assert resolve_backend(instance) is instance
        assert resolve_backend("numpy").name == "numpy"

    def test_bad_dtype_env_rejected(self, monkeypatch):
        monkeypatch.setenv(backend_mod.DTYPE_ENV_VAR, "float16")
        with pytest.raises(ValueError, match="float32.*float64"):
            backend_mod._gpu_dtype()


class warnings_none:
    """Context asserting that no warning is emitted inside it."""

    def __enter__(self):
        import warnings

        self._catcher = warnings.catch_warnings(record=True)
        self._records = self._catcher.__enter__()
        import warnings as w

        w.simplefilter("always")
        return self._records

    def __exit__(self, exc_type, exc, tb):
        self._catcher.__exit__(exc_type, exc, tb)
        if exc_type is None:
            assert not self._records, f"unexpected warnings: {self._records}"


class TestDtypeRoundTrip:
    @pytest.mark.parametrize("name", [n for n in LOCAL_BACKENDS if n != "python"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_float_dtypes_round_trip(self, name, dtype):
        backend = get_backend(name)
        values = np.linspace(0.0, 1.0, 7, dtype=dtype)
        restored = backend.to_numpy(backend.asarray(values))
        assert restored.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(restored, values)

    def test_python_backend_computes_in_float64(self):
        backend = get_backend("python")
        values = np.linspace(0.0, 1.0, 5, dtype=np.float32)
        restored = backend.to_numpy(backend.asarray(values))
        assert restored.dtype == np.float64
        np.testing.assert_allclose(restored, values, atol=1e-7)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_compute_dtype_is_honoured(self, name):
        backend = get_backend(name)
        converted = backend.to_numpy(
            backend.asarray(np.ones(3), dtype=backend.compute_dtype)
        )
        assert converted.dtype == np.dtype(backend.compute_dtype)


class TestGenericOps:
    """Every backend's functional ops pinned against numpy references."""

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_segment_sum_and_take_last(self, name, rng):
        backend = get_backend(name)
        values = rng.random((3, 6))
        segments = np.array([0, 0, 1, 2, 2, 2])
        native = backend.asarray(values, dtype=backend.compute_dtype)
        index = backend.index_array(segments)
        sums = backend.to_numpy(backend.segment_sum(native, index, 3))
        expected = np.zeros((3, 3))
        np.add.at(expected, (slice(None), segments), values)
        np.testing.assert_allclose(sums, expected, atol=1e-6)
        gathered = backend.to_numpy(backend.take_last(native, index))
        np.testing.assert_allclose(gathered, values[:, segments], atol=1e-6)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_matmul_add_broadcast(self, name, rng):
        backend = get_backend(name)
        a, b = rng.random((4, 3)), rng.random((3, 2))
        bias = rng.random(2)
        native = backend.add(
            backend.matmul(
                backend.asarray(a, dtype=backend.compute_dtype),
                backend.asarray(b, dtype=backend.compute_dtype),
            ),
            backend.asarray(bias, dtype=backend.compute_dtype),
        )
        np.testing.assert_allclose(backend.to_numpy(native), a @ b + bias, atol=1e-6)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_where_with_scalars_and_row_broadcast(self, name, rng):
        backend = get_backend(name)
        values = rng.random((3, 5)) - 0.5
        row = rng.random(5)
        native = backend.asarray(values, dtype=backend.compute_dtype)
        condition = backend.greater(native, 0.0)
        clamped = backend.to_numpy(backend.where(condition, native, 0.0))
        np.testing.assert_allclose(clamped, np.where(values > 0, values, 0.0), atol=1e-6)
        rowed = backend.to_numpy(
            backend.where(
                condition, backend.asarray(row, dtype=backend.compute_dtype), native
            )
        )
        np.testing.assert_allclose(rowed, np.where(values > 0, row, values), atol=1e-6)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_activations_and_max(self, name, rng):
        backend = get_backend(name)
        values = rng.standard_normal((2, 7)) * 3
        native = backend.asarray(values, dtype=backend.compute_dtype)
        np.testing.assert_allclose(
            backend.to_numpy(backend.relu(native)), np.maximum(values, 0.0), atol=1e-6
        )
        np.testing.assert_allclose(
            backend.to_numpy(backend.sigmoid(native)),
            1.0 / (1.0 + np.exp(-values)),
            atol=1e-6,
        )
        np.testing.assert_allclose(
            backend.to_numpy(backend.max_last(native)), values.max(axis=-1), atol=1e-6
        )


class TestHotPathEquivalence:
    """Backend hot paths pinned to the numpy reference per-backend tolerance."""

    @staticmethod
    def _tolerance(name: str) -> float:
        return max(get_backend(name).tolerance, 1e-12)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_split_ratios_batch(self, name, trained_dote, mesh4_traffic):
        flat = mesh4_traffic[:16].flat_demands()
        windows, _ = build_history_windows(flat, HISTORY)
        with use_backend("numpy"):
            reference = trained_dote.configure_batch(windows)
        with use_backend(name):
            ratios = trained_dote.configure_batch(windows)
        np.testing.assert_allclose(ratios, reference, atol=self._tolerance(name))
        # Rows remain valid per-pair distributions.
        pair_sums = (trained_dote.path_set.sd_to_path @ np.asarray(ratios).T).T
        np.testing.assert_allclose(pair_sums, 1.0, atol=1e-5)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_max_link_utilization_batch_and_single(
        self, name, trained_dote, mesh4_paths, mesh4_traffic
    ):
        flat = mesh4_traffic[:14].flat_demands()
        windows, targets = build_history_windows(flat, HISTORY)
        ratios = trained_dote.configure_batch(windows)
        reference = max_link_utilization(mesh4_paths, ratios, targets, backend="numpy")
        computed = max_link_utilization(mesh4_paths, ratios, targets, backend=name)
        np.testing.assert_allclose(computed, reference, atol=self._tolerance(name))
        # Single demand vector: a scalar, also through a TEConfiguration.
        config = TEConfiguration(mesh4_paths, ratios[0], normalize=True)
        single_ref = max_link_utilization(mesh4_paths, config, targets[0], backend="numpy")
        single = max_link_utilization(mesh4_paths, config, targets[0], backend=name)
        assert isinstance(single, float)
        assert single == pytest.approx(single_ref, abs=self._tolerance(name))

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_max_link_utilization_rejects_bad_demand(self, name, mesh4_paths):
        ratios = np.full(mesh4_paths.num_paths, 0.5)
        with pytest.raises(ValueError, match="entries"):
            max_link_utilization(mesh4_paths, ratios, np.ones(3), backend=name)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_reroute_around_failures(self, name, trained_dote, mesh4_paths, mesh4_traffic):
        flat = mesh4_traffic[:14].flat_demands()
        windows, _ = build_history_windows(flat, HISTORY)
        ratios = np.asarray(trained_dote.configure_batch(windows))
        # Fail every path of pair (0, 1) plus one path of pair (0, 2): the
        # first pair exercises the partitioned-uniform branch, the second
        # the proportional redistribution, everything else stays untouched.
        mask = np.ones(mesh4_paths.num_paths, dtype=bool)
        mask[list(mesh4_paths.path_indices_for(0, 1))] = False
        mask[mesh4_paths.path_indices_for(0, 2)[0]] = False
        reference = reroute_ratios_around_failures(
            mesh4_paths, ratios, mask, backend="numpy"
        )
        rerouted = reroute_ratios_around_failures(mesh4_paths, ratios, mask, backend=name)
        np.testing.assert_allclose(rerouted, reference, atol=self._tolerance(name))
        # Single-row input keeps its shape.
        single = reroute_ratios_around_failures(
            mesh4_paths, ratios[0], mask, backend=name
        )
        np.testing.assert_allclose(single, reference[0], atol=self._tolerance(name))
        # An all-working mask is an exact pass-through on every backend.
        untouched = reroute_ratios_around_failures(
            mesh4_paths, ratios, np.ones_like(mask), backend=name
        )
        np.testing.assert_array_equal(untouched, ratios)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_zero_surviving_mass_goes_uniform(self, name, mesh4_paths):
        """A pair whose surviving paths carried no mass splits uniformly."""
        ratios = np.zeros(mesh4_paths.num_paths)
        indices = list(mesh4_paths.path_indices_for(0, 1))
        ratios[indices[0]] = 1.0
        for src, dst in mesh4_paths.sd_pairs:
            if (src, dst) != (0, 1):
                ratios[mesh4_paths.path_indices_for(src, dst)[0]] = 1.0
        mask = np.ones(mesh4_paths.num_paths, dtype=bool)
        mask[indices[0]] = False
        rerouted = reroute_ratios_around_failures(mesh4_paths, ratios, mask, backend=name)
        survivors = [i for i in indices if mask[i]]
        np.testing.assert_allclose(
            rerouted[survivors], 1.0 / len(survivors), atol=self._tolerance(name)
        )
        assert rerouted[indices[0]] == pytest.approx(0.0, abs=self._tolerance(name))


class TestEngineBackendEquivalence:
    """Full replays across backends, and numpy bit-identicality."""

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_batch_and_streaming_replay(self, name, trained_dote, mesh4_traffic):
        test = mesh4_traffic[:18]
        reference_engine = EvaluationEngine(backend="numpy")
        reference = reference_engine.evaluate_scheme(trained_dote, test, HISTORY)
        engine = EvaluationEngine(cache=reference_engine.cache, backend=name)
        tolerance = max(get_backend(name).tolerance, 1e-12)
        result = engine.evaluate_scheme(trained_dote, test, HISTORY)
        np.testing.assert_allclose(
            result.normalized_mlus, reference.normalized_mlus, atol=tolerance
        )
        streamed = engine.evaluate_streaming(trained_dote, test, HISTORY, chunk_size=5)
        np.testing.assert_allclose(
            streamed.normalized_mlus, reference.normalized_mlus, atol=tolerance
        )

    def test_numpy_backend_is_bit_identical(self, trained_dote, mesh4_traffic, monkeypatch):
        """REPRO_BACKEND=numpy replay equals the engine's default output bit for bit."""
        test = mesh4_traffic[:16]
        monkeypatch.delenv(backend_mod.BACKEND_ENV_VAR, raising=False)
        implicit = EvaluationEngine().evaluate_scheme(trained_dote, test, HISTORY)
        monkeypatch.setenv(backend_mod.BACKEND_ENV_VAR, "numpy")
        via_env = EvaluationEngine().evaluate_scheme(trained_dote, test, HISTORY)
        pinned = EvaluationEngine(backend="numpy").evaluate_scheme(
            trained_dote, test, HISTORY
        )
        np.testing.assert_array_equal(via_env.normalized_mlus, implicit.normalized_mlus)
        np.testing.assert_array_equal(via_env.raw_mlus, implicit.raw_mlus)
        np.testing.assert_array_equal(pinned.normalized_mlus, implicit.normalized_mlus)
        np.testing.assert_array_equal(pinned.raw_mlus, implicit.raw_mlus)

    def test_engine_backend_beats_environment(self, trained_dote, mesh4_traffic, monkeypatch):
        test = mesh4_traffic[:12]
        monkeypatch.setenv(backend_mod.BACKEND_ENV_VAR, "numpy32")
        pinned = EvaluationEngine(backend="numpy")
        assert pinned.backend is not None and pinned.backend.name == "numpy"
        result = pinned.evaluate_scheme(trained_dote, test, HISTORY)
        reference = EvaluationEngine(backend="numpy").evaluate_scheme(
            trained_dote, test, HISTORY
        )
        np.testing.assert_array_equal(result.normalized_mlus, reference.normalized_mlus)

    @pytest.mark.parametrize("name", LOCAL_BACKENDS)
    def test_failure_experiment_across_backends(self, name, mesh4_paths, mesh4_traffic):
        test = mesh4_traffic[:10]
        tolerance = max(get_backend(name).tolerance * 10, 1e-9)
        outcomes = []
        for backend_name in ("numpy", name):
            engine = EvaluationEngine(backend=backend_name)
            outcomes.append(
                engine.failure_experiment(
                    [PredictionBasedTE(mesh4_paths)],
                    test,
                    HISTORY,
                    num_failures=1,
                    num_trials=2,
                    seed=11,
                )
            )
        for key in outcomes[0]:
            np.testing.assert_allclose(outcomes[0][key], outcomes[1][key], atol=tolerance)
