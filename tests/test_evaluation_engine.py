"""Batched-engine equivalence tests.

The refactor's contract: the batched, cache-aware evaluation engine produces
results numerically identical (within 1e-9) to the seed's per-timestep replay
path.  These tests pin that contract for every scheme family, the LP cache,
the window builders, and the vectorized failure rerouting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend, importable_backends, use_backend
from repro.core import Dote, Figret, RetrainingPolicy, RetrainingScheme, TealLike, TrainingConfig
from repro.core.trainer import build_windows, fit_history_window
from repro.evaluation.engine import EvaluationEngine, build_history_windows
from repro.evaluation.runner import compare_schemes, evaluate_scheme
from repro.solvers import (
    DesensitizationTE,
    OmniscientTE,
    OptimalMLUCache,
    PredictionBasedTE,
    omniscient_mlu,
    solve_mlu_lp,
    solve_mlu_lp_batch,
)
from repro.te.config import TEConfiguration
from repro.te.failures import (
    reroute_around_failures,
    reroute_ratios_around_failures,
    sample_failed_links,
)
from repro.te.mlu import max_link_utilization
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence

HISTORY = 4
TOL = 1e-9

#: Array backends available on this machine, each compared with its own
#: declared tolerance (the float32 plumbing for GPU backends is ~1e-6).
LOCAL_BACKENDS = importable_backends()


def _sequential_replay(scheme, test_sequence, history_len, oracle_demand=False):
    """Reference implementation: the seed's per-timestep replay loop."""
    flat = test_sequence.flat_demands()
    raw, optimal, normalized = [], [], []
    for t in range(history_len, len(flat)):
        history = flat[t - history_len : t]
        if oracle_demand:
            history = np.vstack([history, flat[t]])
        config = scheme.configure(history)
        mlu = max_link_utilization(scheme.path_set, config, flat[t])
        best = omniscient_mlu(scheme.path_set, flat[t])
        raw.append(mlu)
        optimal.append(best)
        normalized.append(mlu / best)
    return np.array(raw), np.array(optimal), np.array(normalized)


@pytest.fixture(scope="module")
def trained_neural_schemes(request):
    """Tiny trained neural schemes on the mesh4 scenario (shared per module)."""
    mesh4_paths = request.getfixturevalue("mesh4_paths")
    mesh4_traffic = request.getfixturevalue("mesh4_traffic")
    train, _ = mesh4_traffic.split(0.7)
    config = TrainingConfig(
        epochs=2, history_len=HISTORY, hidden_sizes=(16, 16), normalize_by_optimal=False
    )
    schemes = [
        Figret(mesh4_paths, config.replace(robustness_weight=0.1)),
        Dote(mesh4_paths, config),
        TealLike(mesh4_paths, config),
    ]
    for scheme in schemes:
        scheme.precompute(train)
    return schemes


class TestWindowBuilder:
    def test_windows_match_python_loop(self, mesh4_traffic):
        flat = mesh4_traffic[:20].flat_demands()
        windows, targets = build_history_windows(flat, HISTORY)
        assert windows.shape == (len(flat) - HISTORY, HISTORY, flat.shape[1])
        for i in range(len(windows)):
            np.testing.assert_array_equal(windows[i], flat[i : i + HISTORY])
            np.testing.assert_array_equal(targets[i], flat[i + HISTORY])

    def test_oracle_windows_carry_true_demand(self, mesh4_traffic):
        flat = mesh4_traffic[:15].flat_demands()
        windows, targets = build_history_windows(flat, HISTORY, oracle_demand=True)
        assert windows.shape == (len(flat) - HISTORY, HISTORY + 1, flat.shape[1])
        for i in range(len(windows)):
            np.testing.assert_array_equal(windows[i, -1], targets[i])
            np.testing.assert_array_equal(windows[i, :-1], flat[i : i + HISTORY])

    def test_too_short_sequence_rejected(self, mesh4_traffic):
        flat = mesh4_traffic[:4].flat_demands()
        with pytest.raises(ValueError):
            build_history_windows(flat, 4)

    def test_trainer_build_windows_matches_loop(self, mesh4_traffic):
        sequence = mesh4_traffic[:20]
        inputs, targets = build_windows(sequence, HISTORY)
        expected_inputs, expected_targets = [], []
        for window, target in sequence.windows(HISTORY):
            expected_inputs.append(window.reshape(-1))
            expected_targets.append(target)
        np.testing.assert_array_equal(inputs, np.stack(expected_inputs))
        np.testing.assert_array_equal(targets, np.stack(expected_targets))

    def test_trainer_build_windows_too_short(self, mesh4_traffic):
        with pytest.raises(ValueError):
            build_windows(mesh4_traffic[:3], 5)

    def test_fit_history_window_trims_and_pads(self):
        window = np.arange(12, dtype=float).reshape(4, 3)
        np.testing.assert_array_equal(fit_history_window(window, 2), window[-2:])
        padded = fit_history_window(window, 6)
        np.testing.assert_array_equal(padded[:3], np.repeat(window[:1], 3, axis=0))
        np.testing.assert_array_equal(padded[2:], window)
        batch = np.stack([window, window + 1.0])
        trimmed = fit_history_window(batch, 2)
        np.testing.assert_array_equal(trimmed, batch[:, -2:, :])


class TestConfigureBatchEquivalence:
    def _assert_batch_matches_loop(self, scheme, windows):
        batched = scheme.configure_batch(windows)
        assert batched.shape == (len(windows), scheme.path_set.num_paths)
        for i, window in enumerate(windows):
            expected = scheme.configure(window).split_ratios
            np.testing.assert_allclose(batched[i], expected, atol=TOL)

    def test_lp_schemes_fallback(self, mesh4_paths, mesh4_traffic):
        windows, _ = build_history_windows(mesh4_traffic[:12].flat_demands(), HISTORY)
        self._assert_batch_matches_loop(PredictionBasedTE(mesh4_paths), windows)
        self._assert_batch_matches_loop(DesensitizationTE(mesh4_paths), windows)

    def test_neural_schemes_vectorized(self, trained_neural_schemes, mesh4_traffic):
        windows, _ = build_history_windows(mesh4_traffic[:16].flat_demands(), HISTORY)
        for scheme in trained_neural_schemes:
            self._assert_batch_matches_loop(scheme, windows)

    def test_retraining_wrapper_delegates(self, trained_neural_schemes, mesh4_traffic):
        inner = trained_neural_schemes[1]
        wrapper = RetrainingScheme(inner, RetrainingPolicy(period=1000), name="wrapped")
        windows, _ = build_history_windows(mesh4_traffic[:12].flat_demands(), HISTORY)
        np.testing.assert_allclose(
            wrapper.configure_batch(windows), inner.configure_batch(windows), atol=TOL
        )

    def test_retraining_rebaselines_drift_detector(self, mesh4_paths, mesh4_traffic):
        from repro.core import TrafficDriftDetector

        train, _ = mesh4_traffic.split(0.5)
        # Shifted traffic: all demand concentrated on one pair (a shape
        # change, which the cosine-based drift score reacts to).
        shifted_mats = []
        for t in range(12):
            m = np.zeros((4, 4))
            m[0, 1] = 100.0 + t
            shifted_mats.append(TrafficMatrix(m))
        scaled = TrafficMatrixSequence(shifted_mats)
        detector = TrafficDriftDetector(train, drift_threshold=0.05)
        policy = RetrainingPolicy(drift_detector=detector)
        wrapper = RetrainingScheme(DesensitizationTE(mesh4_paths), policy)
        wrapper.precompute(train)
        first = wrapper.maybe_retrain(scaled)
        assert first.retrain and first.reason == "traffic drift"
        # After retraining on the shifted traffic, the detector must be
        # re-baselined -- the same window no longer counts as drift.
        second = wrapper.maybe_retrain(scaled)
        assert not second.retrain
        assert wrapper.retrain_count == 1

    def test_batch_ratios_are_valid_splits(self, trained_neural_schemes, mesh4_traffic):
        windows, _ = build_history_windows(mesh4_traffic[:12].flat_demands(), HISTORY)
        for scheme in trained_neural_schemes:
            batched = scheme.configure_batch(windows)
            assert (batched >= -TOL).all()
            pair_sums = (scheme.path_set.sd_to_path @ batched.T).T
            np.testing.assert_allclose(pair_sums, 1.0, atol=1e-6)

    def test_untrained_neural_batch_raises(self, mesh4_paths, mesh4_traffic):
        windows, _ = build_history_windows(mesh4_traffic[:10].flat_demands(), HISTORY)
        with pytest.raises(RuntimeError):
            Dote(mesh4_paths).configure_batch(windows)

    @pytest.mark.parametrize("backend_name", LOCAL_BACKENDS)
    def test_batch_matches_loop_under_every_backend(
        self, backend_name, trained_neural_schemes, mesh4_traffic
    ):
        """configure_batch under any backend tracks the per-window loop.

        The per-window ``configure`` path always runs on float64 numpy, so
        this cross-checks each backend's vectorized forward pass against an
        independent implementation, within the backend's tolerance.
        """
        tolerance = max(get_backend(backend_name).tolerance, TOL)
        windows, _ = build_history_windows(mesh4_traffic[:12].flat_demands(), HISTORY)
        for scheme in trained_neural_schemes:
            with use_backend(backend_name):
                batched = scheme.configure_batch(windows)
            for i, window in enumerate(windows):
                expected = scheme.configure(window).split_ratios
                np.testing.assert_allclose(batched[i], expected, atol=tolerance)


class TestEvaluateSchemeEquivalence:
    @pytest.mark.parametrize("oracle_demand", [False, True])
    def test_lp_scheme_matches_sequential(self, mesh4_paths, mesh4_traffic, oracle_demand):
        test = mesh4_traffic[:14]
        scheme = OmniscientTE(mesh4_paths) if oracle_demand else PredictionBasedTE(mesh4_paths)
        result = evaluate_scheme(
            scheme, test, HISTORY, oracle_demand=oracle_demand, engine=EvaluationEngine()
        )
        raw, optimal, normalized = _sequential_replay(
            scheme, test, HISTORY, oracle_demand=oracle_demand
        )
        np.testing.assert_allclose(result.raw_mlus, raw, atol=TOL)
        np.testing.assert_allclose(result.optimal_mlus, optimal, atol=TOL)
        np.testing.assert_allclose(result.normalized_mlus, normalized, atol=TOL)

    def test_neural_schemes_match_sequential(self, trained_neural_schemes, mesh4_traffic):
        test = mesh4_traffic[:14]
        for scheme in trained_neural_schemes:
            result = evaluate_scheme(scheme, test, HISTORY, engine=EvaluationEngine())
            raw, optimal, normalized = _sequential_replay(scheme, test, HISTORY)
            np.testing.assert_allclose(result.raw_mlus, raw, atol=TOL)
            np.testing.assert_allclose(result.normalized_mlus, normalized, atol=TOL)

    def test_zero_demand_interval_does_not_divide_by_zero(self, mesh4_paths):
        rng = np.random.default_rng(0)
        matrices = [rng.random((4, 4)) for _ in range(8)]
        matrices.append(np.zeros((4, 4)))  # an all-zero demand interval
        matrices.extend(rng.random((4, 4)) for _ in range(2))
        sequence = TrafficMatrixSequence([TrafficMatrix(m) for m in matrices])
        result = evaluate_scheme(
            PredictionBasedTE(mesh4_paths), sequence, HISTORY, engine=EvaluationEngine()
        )
        assert np.isfinite(result.normalized_mlus).all()

    def test_zero_demand_with_explicit_zero_normaliser(self, mesh4_paths, mesh4_traffic):
        test = mesh4_traffic[:10]
        # A zero normaliser row used to divide by zero; now it is floored.
        optimal = np.zeros(len(test))
        result = evaluate_scheme(
            PredictionBasedTE(mesh4_paths),
            test,
            HISTORY,
            optimal_mlus=optimal,
            engine=EvaluationEngine(),
        )
        assert np.isfinite(result.normalized_mlus).all()


class TestCompareSchemes:
    def test_mismatched_path_sets_rejected(self, mesh4_paths, triangle_paths, mesh4_traffic):
        train, test = mesh4_traffic.split(0.7)
        schemes = [PredictionBasedTE(mesh4_paths), PredictionBasedTE(triangle_paths)]
        with pytest.raises(ValueError, match="share one PathSet"):
            compare_schemes(schemes, train, test[:12], HISTORY, engine=EvaluationEngine())

    def test_structurally_equal_path_sets_accepted(self, mesh4_topology, mesh4_traffic):
        from repro.paths.ksp import build_ksp_path_set

        train, test = mesh4_traffic.split(0.7)
        paths_a = build_ksp_path_set(mesh4_topology, k=3)
        paths_b = build_ksp_path_set(mesh4_topology, k=3)
        schemes = [PredictionBasedTE(paths_a), DesensitizationTE(paths_b)]
        results = compare_schemes(schemes, train, test[:12], HISTORY, engine=EvaluationEngine())
        assert set(results) == {"Pred TE (last)", "Des TE"}


class TestOptimalMLUCache:
    def test_cached_values_match_fresh_solves(self, mesh4_paths, mesh4_traffic):
        demands = mesh4_traffic[:10].flat_demands()
        cache = OptimalMLUCache()
        cached = cache.optimal_mlus(mesh4_paths, demands)
        fresh = np.array([omniscient_mlu(mesh4_paths, d) for d in demands])
        np.testing.assert_allclose(cached, fresh, atol=TOL)

    def test_hits_and_misses_accounting(self, mesh4_paths, mesh4_traffic):
        demands = mesh4_traffic[:6].flat_demands()
        cache = OptimalMLUCache()
        cache.optimal_mlus(mesh4_paths, demands)
        assert cache.misses == len(demands)
        assert cache.hits == 0
        cache.optimal_mlus(mesh4_paths, demands)
        assert cache.hits == len(demands)

    def test_duplicate_rows_solved_once(self, mesh4_paths):
        demand = np.full(mesh4_paths.num_sd_pairs, 2.0)
        cache = OptimalMLUCache()
        values = cache.optimal_mlus(mesh4_paths, np.stack([demand, demand, demand]))
        # Every requested row counts (hits + misses == rows), but duplicates
        # within the batch are solved only once.
        assert cache.misses == 3
        assert len(cache) == 1
        assert np.all(values == values[0])

    def test_mask_keys_are_distinct(self, mesh4_paths, mesh4_traffic, rng):
        demand = mesh4_traffic[0].flat()
        failed = sample_failed_links(mesh4_paths.topology, 1, rng)
        mask = mesh4_paths.restrict_to_working_paths(failed)
        cache = OptimalMLUCache()
        unmasked = cache.optimal_mlu(mesh4_paths, demand)
        masked = cache.optimal_mlu(mesh4_paths, demand, path_mask=mask)
        assert cache.misses == 2
        _, expected_masked = solve_mlu_lp(mesh4_paths, demand, path_mask=mask)
        assert masked == pytest.approx(max(expected_masked, 1e-12), abs=TOL)
        assert unmasked <= masked + TOL

    def test_eviction_bounds_size(self, mesh4_paths, mesh4_traffic):
        demands = mesh4_traffic[:8].flat_demands()
        cache = OptimalMLUCache(max_entries=3)
        cache.optimal_mlus(mesh4_paths, demands)
        assert len(cache) == 3

    def test_shared_across_fingerprint_equal_path_sets(self, mesh4_topology, mesh4_traffic):
        from repro.paths.ksp import build_ksp_path_set

        demands = mesh4_traffic[:4].flat_demands()
        cache = OptimalMLUCache()
        cache.optimal_mlus(build_ksp_path_set(mesh4_topology, k=3), demands)
        misses = cache.misses
        cache.optimal_mlus(build_ksp_path_set(mesh4_topology, k=3), demands)
        assert cache.misses == misses  # second path set hits the same entries


class TestConstraintStructureCache:
    def test_dropped_path_sets_are_collected(self, mesh4_topology):
        import gc

        from repro.paths.ksp import build_ksp_path_set
        from repro.solvers.lp import _STRUCTURES, constraint_structure

        before = len(_STRUCTURES)
        for _ in range(3):
            constraint_structure(build_ksp_path_set(mesh4_topology, k=2))
        gc.collect()
        # The structures must not pin their PathSet keys alive.
        assert len(_STRUCTURES) <= before + 1

    def test_structure_reused_for_same_path_set(self, mesh4_paths):
        from repro.solvers.lp import constraint_structure

        assert constraint_structure(mesh4_paths) is constraint_structure(mesh4_paths)

    def test_wrong_demand_length_rejected(self, mesh4_paths):
        from repro.solvers.lp import constraint_structure

        with pytest.raises(ValueError, match="entries"):
            constraint_structure(mesh4_paths).a_ub(np.ones(3))


class TestBatchLPSolver:
    def test_batch_matches_individual_solves(self, mesh4_paths, mesh4_traffic):
        demands = mesh4_traffic[:5].flat_demands()
        batch = solve_mlu_lp_batch(mesh4_paths, demands)
        for demand, (config, mlu) in zip(demands, batch):
            expected_config, expected_mlu = solve_mlu_lp(mesh4_paths, demand)
            assert mlu == pytest.approx(expected_mlu, abs=TOL)
            np.testing.assert_allclose(
                config.split_ratios, expected_config.split_ratios, atol=TOL
            )

    def test_process_pool_matches_sequential(self, mesh4_paths, mesh4_traffic):
        demands = mesh4_traffic[:4].flat_demands()
        sequential = solve_mlu_lp_batch(mesh4_paths, demands)
        try:
            pooled = solve_mlu_lp_batch(mesh4_paths, demands, workers=2)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process pools unavailable in this environment: {exc}")
        for (_, seq_mlu), (_, pool_mlu) in zip(sequential, pooled):
            assert pool_mlu == pytest.approx(seq_mlu, abs=TOL)


class TestBatchedReroute:
    def test_matches_per_config_reroute(self, mesh4_paths, rng):
        ratios = rng.random((6, mesh4_paths.num_paths))
        rows = np.stack(
            [TEConfiguration(mesh4_paths, row).split_ratios for row in ratios]
        )
        failed = sample_failed_links(mesh4_paths.topology, 2, rng)
        mask = mesh4_paths.restrict_to_working_paths(failed)
        batched = reroute_ratios_around_failures(mesh4_paths, rows, mask)
        for i in range(len(rows)):
            config = TEConfiguration(mesh4_paths, rows[i], normalize=False)
            expected = reroute_around_failures(config, failed).split_ratios
            np.testing.assert_allclose(batched[i], expected, atol=TOL)

    def test_no_failures_is_identity(self, mesh4_paths, rng):
        rows = np.stack(
            [
                TEConfiguration(mesh4_paths, rng.random(mesh4_paths.num_paths)).split_ratios
                for _ in range(3)
            ]
        )
        mask = np.ones(mesh4_paths.num_paths, dtype=bool)
        np.testing.assert_array_equal(
            reroute_ratios_around_failures(mesh4_paths, rows, mask), rows
        )

    def test_single_vector_shape(self, mesh4_paths, rng):
        row = TEConfiguration(mesh4_paths, rng.random(mesh4_paths.num_paths)).split_ratios
        failed = sample_failed_links(mesh4_paths.topology, 1, rng)
        mask = mesh4_paths.restrict_to_working_paths(failed)
        out = reroute_ratios_around_failures(mesh4_paths, row, mask)
        assert out.shape == row.shape
        expected = reroute_around_failures(
            TEConfiguration(mesh4_paths, row, normalize=False), failed
        ).split_ratios
        np.testing.assert_allclose(out, expected, atol=TOL)


class TestFailureExperimentEquivalence:
    def test_matches_sequential_reference(self, mesh4_paths, mesh4_traffic):
        from repro.solvers import FaultAwareDesensitizationTE
        from repro.solvers.lp import solve_mlu_lp as solve
        from repro.te.failures import reroute_around_failures as reroute

        test = mesh4_traffic[:8]
        schemes = [DesensitizationTE(mesh4_paths), FaultAwareDesensitizationTE(mesh4_paths)]
        engine = EvaluationEngine()
        batched = engine.failure_experiment(
            schemes, test, HISTORY, num_failures=1, num_trials=2, seed=3
        )

        # Reference: the seed's trials x timesteps x schemes triple loop.
        flat = test.flat_demands()
        rng = np.random.default_rng(3)
        expected: dict[str, list[float]] = {s.name: [] for s in schemes}
        for _ in range(2):
            failed = sample_failed_links(mesh4_paths.topology, 1, rng)
            working_mask = mesh4_paths.restrict_to_working_paths(failed)
            for scheme in schemes:
                if scheme.name == "FA Des TE":
                    scheme.set_failures(failed)
            for t in range(HISTORY, len(flat)):
                history = flat[t - HISTORY : t]
                demand = flat[t]
                _, oracle = solve(mesh4_paths, demand, path_mask=working_mask)
                oracle = max(oracle, 1e-12)
                for scheme in schemes:
                    config = scheme.configure(history)
                    if scheme.name == "FA Des TE":
                        rerouted = config
                    else:
                        rerouted = reroute(config, failed)
                    mlu = max_link_utilization(mesh4_paths, rerouted, demand)
                    expected[scheme.name].append(mlu / oracle)
        for name in expected:
            np.testing.assert_allclose(batched[name], np.array(expected[name]), atol=1e-6)
